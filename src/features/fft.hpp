// Radix-2 FFT and the spectral summary features built on it (TSFRESH's
// fft_aggregated / spectral-density family).
#pragma once

#include "util/aligned.hpp"

#include <complex>
#include <span>
#include <vector>

namespace prodigy::features {

/// In-place iterative radix-2 Cooley–Tukey FFT.  data.size() must be a
/// power of two (use power_spectrum for arbitrary lengths).  Takes a span so
/// plain and over-aligned vectors both work as backing storage.
void fft_radix2(std::span<std::complex<double>> data);

/// One-sided power spectrum of a mean-removed, zero-padded copy of xs.
/// Returns |X_k|^2 for k = 0 .. N/2 where N is xs.size() padded to 2^m.
std::vector<double> power_spectrum(std::span<const double> xs);

/// Scratch-reusing variant: fills `power` with the one-sided spectrum using
/// `fft_buffer` as the transform workspace.  Both buffers are resized as
/// needed and keep their capacity across calls, so repeated extraction
/// (extract_node_features' per-thread scratch) does not allocate.  The
/// buffers are the 64-byte-aligned scratch type so spectra can feed the
/// feature-kernel TU's vector loads unsplit.
void power_spectrum(std::span<const double> xs,
                    util::AlignedVec<std::complex<double>>& fft_buffer,
                    util::AlignedVec<double>& power);

struct SpectralSummary {
  double total_power = 0.0;
  double centroid = 0.0;      // power-weighted mean normalized frequency
  double spread = 0.0;        // power-weighted stddev of frequency
  double entropy = 0.0;       // Shannon entropy of the normalized spectrum
  double peak_frequency = 0.0;  // normalized frequency of the strongest bin
  double band_power[4] = {0, 0, 0, 0};  // quartile frequency bands
};

SpectralSummary spectral_summary(std::span<const double> xs);

/// Summary aggregates from an already-computed one-sided power spectrum.
SpectralSummary spectral_summary_from_power(std::span<const double> power);

}  // namespace prodigy::features
