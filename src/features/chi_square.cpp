#include "features/chi_square.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace prodigy::features {

namespace {
// Values in [-1e-9, 0) are treated as floating-point noise around zero.
constexpr double kNegativeNoiseEpsilon = -1e-9;
// Denominator substitute when expected == 0 but observed > 0 (possible when
// total * p_class underflows under extreme imbalance): 0.5 is the standard
// pseudo-count / continuity-style correction.
constexpr double kZeroExpectedPseudoCount = 0.5;
}  // namespace

double chi2_term(double observed, double expected) noexcept {
  if (expected > 0.0) {
    const double d = observed - expected;
    return d * d / expected;
  }
  if (observed > 0.0) {
    // Historically this cell was silently skipped, scoring an impossibly
    // surprising observation as zero evidence.
    return observed * observed / kZeroExpectedPseudoCount;
  }
  return 0.0;
}

std::vector<double> chi2_scores(const tensor::Matrix& X, const std::vector<int>& y) {
  if (X.rows() != y.size()) {
    throw std::invalid_argument("chi2_scores: rows != labels");
  }
  if (X.rows() == 0) return std::vector<double>(X.cols(), 0.0);

  std::size_t positives = 0;
  for (int label : y) positives += label != 0 ? 1 : 0;
  const std::size_t negatives = y.size() - positives;
  if (positives == 0 || negatives == 0) {
    throw std::invalid_argument(
        "chi2_scores: needs samples of both classes (the paper uses a small "
        "set of anomalous samples only for this stage)");
  }

  const double p_pos = static_cast<double>(positives) / static_cast<double>(y.size());
  const double p_neg = 1.0 - p_pos;

  std::vector<double> scores(X.cols(), 0.0);
  std::vector<double> observed_pos(X.cols(), 0.0);
  std::vector<double> observed_neg(X.cols(), 0.0);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    auto& target = y[r] != 0 ? observed_pos : observed_neg;
    const double* row = X.data() + r * X.cols();
    for (std::size_t c = 0; c < X.cols(); ++c) {
      double value = row[c];
      if (value < 0.0) {
        // Min-max-scaled features can land a hair below zero from rounding;
        // clamp that noise but keep rejecting genuinely negative data.
        if (value < kNegativeNoiseEpsilon) {
          throw std::invalid_argument("chi2_scores: negative feature value; "
                                      "min-max scale features first");
        }
        value = 0.0;
      }
      target[c] += value;
    }
  }

  for (std::size_t c = 0; c < X.cols(); ++c) {
    const double total = observed_pos[c] + observed_neg[c];
    if (total <= 0.0) {
      scores[c] = 0.0;  // all-zero feature carries no information
      continue;
    }
    const double expected_pos = total * p_pos;
    const double expected_neg = total * p_neg;
    scores[c] = chi2_term(observed_pos[c], expected_pos) +
                chi2_term(observed_neg[c], expected_neg);
  }
  return scores;
}

std::vector<std::size_t> top_k_indices(const std::vector<double>& scores,
                                       std::size_t k) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min(k, scores.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&scores](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // deterministic tie-break
                    });
  order.resize(k);
  return order;
}

SelectionResult select_features_chi2(const FeatureDataset& dataset, std::size_t k) {
  SelectionResult result;
  result.scores = chi2_scores(dataset.X, dataset.labels);
  result.selected = top_k_indices(result.scores, k);
  return result;
}

SelectionResult select_features_variance(const FeatureDataset& dataset,
                                         std::size_t k) {
  SelectionResult result;
  result.scores.assign(dataset.X.cols(), 0.0);
  for (std::size_t c = 0; c < dataset.X.cols(); ++c) {
    const auto column = dataset.X.column(c);
    const double lo = *std::min_element(column.begin(), column.end());
    const double hi = *std::max_element(column.begin(), column.end());
    if (hi <= lo) continue;
    // Variance after min-max scaling: scale-free spread measure.
    double mean = 0.0;
    for (const double v : column) mean += (v - lo) / (hi - lo);
    mean /= static_cast<double>(column.size());
    double var = 0.0;
    for (const double v : column) {
      const double z = (v - lo) / (hi - lo) - mean;
      var += z * z;
    }
    result.scores[c] = var / static_cast<double>(column.size());
  }
  result.selected = top_k_indices(result.scores, k);
  return result;
}

}  // namespace prodigy::features
