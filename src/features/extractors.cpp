#include "features/extractors.hpp"

#include "features/kernels.hpp"
#include "tensor/stats.hpp"

#include <algorithm>
#include <cstdint>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

namespace prodigy::features {

double abs_energy(std::span<const double> xs) noexcept {
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return acc;
}

double root_mean_square(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return std::sqrt(abs_energy(xs) / static_cast<double>(xs.size()));
}

double mean_abs_change(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) acc += std::abs(xs[i] - xs[i - 1]);
  return acc / static_cast<double>(xs.size() - 1);
}

double mean_change(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  return (xs.back() - xs.front()) / static_cast<double>(xs.size() - 1);
}

double absolute_sum_of_changes(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) acc += std::abs(xs[i] - xs[i - 1]);
  return acc;
}

double mean_second_derivative_central(std::span<const double> xs) noexcept {
  if (xs.size() < 3) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i + 1 < xs.size(); ++i) {
    acc += 0.5 * (xs[i + 1] - 2.0 * xs[i] + xs[i - 1]);
  }
  return acc / static_cast<double>(xs.size() - 2);
}

double variation_coefficient(double mean, double stddev) noexcept {
  if (mean == 0.0) return 0.0;
  return stddev / std::abs(mean);
}

double variation_coefficient(std::span<const double> xs) noexcept {
  const double m = tensor::mean(xs);
  if (m == 0.0) return 0.0;
  return variation_coefficient(m, tensor::stddev(xs));
}

double value_range(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return tensor::max_value(xs) - tensor::min_value(xs);
}

double interquartile_range(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  // tensor::quantile propagates NaN instead of sorting it (UB); the IQR of
  // a NaN-bearing series is NaN, matching the grouped registry path.
  return tensor::quantile(xs, 0.75) - tensor::quantile(xs, 0.25);
}

namespace {

template <typename Compare>
std::pair<std::size_t, std::size_t> first_last_extreme(std::span<const double> xs,
                                                       Compare better) noexcept {
  std::size_t first = 0, last = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (better(xs[i], xs[first])) first = i;
    if (!better(xs[last], xs[i])) last = i;  // >= / <= keeps the latest tie
  }
  return {first, last};
}

double relative(std::size_t index, std::size_t n) noexcept {
  return n == 0 ? 0.0 : static_cast<double>(index) / static_cast<double>(n);
}

}  // namespace

double first_location_of_maximum(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return relative(first_last_extreme(xs, std::greater<>()).first, xs.size());
}

double last_location_of_maximum(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return relative(first_last_extreme(xs, std::greater<>()).second, xs.size());
}

double first_location_of_minimum(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return relative(first_last_extreme(xs, std::less<>()).first, xs.size());
}

double last_location_of_minimum(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return relative(first_last_extreme(xs, std::less<>()).second, xs.size());
}

double count_above_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = tensor::mean(xs);
  std::size_t count = 0;
  for (double x : xs) count += x > m ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

double count_below_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = tensor::mean(xs);
  std::size_t count = 0;
  for (double x : xs) count += x < m ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

namespace {

double longest_strike(std::span<const double> xs, bool above) noexcept {
  if (xs.empty()) return 0.0;
  const double m = tensor::mean(xs);
  std::size_t best = 0, current = 0;
  for (double x : xs) {
    const bool hit = above ? x > m : x < m;
    current = hit ? current + 1 : 0;
    best = std::max(best, current);
  }
  return static_cast<double>(best) / static_cast<double>(xs.size());
}

}  // namespace

double longest_strike_above_mean(std::span<const double> xs) noexcept {
  return longest_strike(xs, true);
}

double longest_strike_below_mean(std::span<const double> xs) noexcept {
  return longest_strike(xs, false);
}

double mean_crossing_rate(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = tensor::mean(xs);
  std::size_t crossings = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if ((xs[i - 1] > m) != (xs[i] > m)) ++crossings;
  }
  return static_cast<double>(crossings) / static_cast<double>(xs.size() - 1);
}

double number_peaks(std::span<const double> xs, std::size_t support) noexcept {
  if (xs.size() < 2 * support + 1 || support == 0) return 0.0;
  std::size_t peaks = 0;
  for (std::size_t i = support; i + support < xs.size(); ++i) {
    bool is_peak = true;
    for (std::size_t k = 1; k <= support && is_peak; ++k) {
      if (xs[i] <= xs[i - k] || xs[i] <= xs[i + k]) is_peak = false;
    }
    if (is_peak) ++peaks;
  }
  return static_cast<double>(peaks) / static_cast<double>(xs.size());
}

double ratio_beyond_r_sigma(std::span<const double> xs, double r, double mean,
                            double stddev) noexcept {
  if (xs.empty()) return 0.0;
  if (stddev == 0.0) return 0.0;
  std::size_t count = 0;
  for (double x : xs) count += std::abs(x - mean) > r * stddev ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

double ratio_beyond_r_sigma(std::span<const double> xs, double r) noexcept {
  return ratio_beyond_r_sigma(xs, r, tensor::mean(xs), tensor::stddev(xs));
}

double c3(std::span<const double> xs, std::size_t lag) noexcept {
  if (xs.size() < 2 * lag + 1 || lag == 0) return 0.0;
  double acc = 0.0;
  const std::size_t n = xs.size() - 2 * lag;
  for (std::size_t i = 0; i < n; ++i) {
    acc += xs[i + 2 * lag] * xs[i + lag] * xs[i];
  }
  return acc / static_cast<double>(n);
}

double time_reversal_asymmetry(std::span<const double> xs, std::size_t lag) noexcept {
  if (xs.size() < 2 * lag + 1 || lag == 0) return 0.0;
  double acc = 0.0;
  const std::size_t n = xs.size() - 2 * lag;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = xs[i + 2 * lag];
    const double b = xs[i + lag];
    const double c = xs[i];
    acc += a * a * b - b * c * c;
  }
  return acc / static_cast<double>(n);
}

double cid_ce(std::span<const double> xs, bool normalize, double mean,
              double stddev) noexcept {
  if (xs.size() < 2) return 0.0;
  double acc = 0.0;
  if (normalize) {
    if (stddev == 0.0) return 0.0;
    double prev = (xs[0] - mean) / stddev;
    for (std::size_t i = 1; i < xs.size(); ++i) {
      const double current = (xs[i] - mean) / stddev;
      const double d = current - prev;
      acc += d * d;
      prev = current;
    }
  } else {
    for (std::size_t i = 1; i < xs.size(); ++i) {
      const double d = xs[i] - xs[i - 1];
      acc += d * d;
    }
  }
  return std::sqrt(acc);
}

double cid_ce(std::span<const double> xs, bool normalize) noexcept {
  if (!normalize) return cid_ce(xs, false, 0.0, 0.0);
  return cid_ce(xs, true, tensor::mean(xs), tensor::stddev(xs));
}

double approximate_entropy(std::span<const double> xs, std::size_t m, double r_frac) {
  constexpr std::size_t kMaxPoints = 256;  // O(n^2) cost control
  thread_local std::vector<double> series;
  if (xs.size() > kMaxPoints) {
    series.clear();
    series.reserve(kMaxPoints);
    const double stride = static_cast<double>(xs.size()) / kMaxPoints;
    for (std::size_t i = 0; i < kMaxPoints; ++i) {
      series.push_back(xs[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
    }
  } else {
    series.assign(xs.begin(), xs.end());
  }
  const std::size_t n = series.size();
  if (n < m + 2) return 0.0;
  const double r = r_frac * tensor::stddev(series);
  if (r == 0.0) return 0.0;
  // Non-finite tolerance (NaN/inf values in the window make stddev NaN or
  // inf): every `> r` mismatch test below is false, so the historical loop
  // counted every pair as a match in both dims, making phi_lo == phi_hi ==
  // log(1) == 0 exactly.  Short-circuit that result here — it also keeps
  // NaNs away from the sort in the prefilter.
  if (!std::isfinite(r)) return 0.0;

  // Exact pair-match counts for embedding dims m and m+1 in one symmetric
  // sweep: a dim-(m+1) match is a dim-m match whose next component also
  // agrees, so the expensive prefix comparison is shared, and (i, j) /
  // (j, i) are counted together.  The kernel runs the sorted dim-1
  // prefilter as a vector diagonal sweep over lane-contiguous arrays;
  // counts are integers, so the lane order cannot change them, and the phi
  // log-sums below keep the original index order — the result is
  // bit-identical to the naive two-pass O(2 n^2 m) loop.
  const std::size_t count_lo = n - m + 1;  // windows of length m
  const std::size_t count_hi = n - m;      // windows of length m+1
  thread_local std::vector<std::uint32_t> matches_lo;
  thread_local std::vector<std::uint32_t> matches_hi;
  matches_lo.assign(count_lo, 1);  // self-match
  matches_hi.assign(count_hi, 1);
  thread_local kernels::ApEnScratch apen_scratch;
  kernels::apen_match_counts(series, m, r, matches_lo, matches_hi,
                             apen_scratch);

  // Match counts are small integers in [1, count], so the log terms repeat
  // heavily; precompute log(k / count) once per distinct count (two per
  // call, stable across calls at a fixed window size).  Each table entry is
  // the same expression the loop evaluated inline, and the summation stays
  // in index order, so the result is bit-identical.
  auto phi = [](std::span<const std::uint32_t> matches,
                std::vector<double>& table) {
    const double count = static_cast<double>(matches.size());
    if (table.size() != matches.size() + 1) {
      table.resize(matches.size() + 1);
      for (std::size_t k = 1; k <= matches.size(); ++k) {
        table[k] = std::log(static_cast<double>(k) / count);
      }
    }
    double total = 0.0;
    for (const auto matched : matches) total += table[matched];
    return total / count;
  };
  thread_local std::vector<double> log_table_lo;
  thread_local std::vector<double> log_table_hi;
  return std::abs(phi(matches_lo, log_table_lo) -
                  phi(matches_hi, log_table_hi));
}

double binned_entropy(std::span<const double> xs, std::size_t max_bins,
                      double min_value, double max_value) {
  if (xs.empty() || max_bins == 0) return 0.0;
  const double lo = min_value;
  const double hi = max_value;
  if (hi <= lo) return 0.0;
  std::vector<std::size_t> counts(max_bins, 0);
  for (double x : xs) {
    auto bin = static_cast<std::size_t>((x - lo) / (hi - lo) * static_cast<double>(max_bins));
    counts[std::min(bin, max_bins - 1)]++;
  }
  double entropy = 0.0;
  for (std::size_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(xs.size());
    entropy -= p * std::log(p);
  }
  return entropy;
}

double binned_entropy(std::span<const double> xs, std::size_t max_bins) {
  if (xs.empty() || max_bins == 0) return 0.0;
  return binned_entropy(xs, max_bins, tensor::min_value(xs),
                        tensor::max_value(xs));
}

double binned_entropy_sorted(std::span<const double> sorted,
                             std::size_t max_bins, double min_value,
                             double max_value) {
  if (sorted.empty() || max_bins == 0) return 0.0;
  const double lo = min_value;
  const double hi = max_value;
  if (hi <= lo) return 0.0;
  // The scan path's bin map, verbatim.  Every step — subtraction of a
  // constant, division by a positive constant, multiplication by a positive
  // constant, the size_t truncation, the min clamp — is monotone
  // non-decreasing in x under round-to-nearest, so on an ascending input
  // the bin sequence is non-decreasing and each bin's population is a
  // contiguous range: max_bins binary searches replace the O(n) scatter
  // pass, with bit-identical counts.  Callers must pass finite values
  // (the profile's sorted copy excludes NaNs; non-finite extrema take the
  // scan path).
  const auto bin_of = [&](double x) {
    const auto bin = static_cast<std::size_t>(
        (x - lo) / (hi - lo) * static_cast<double>(max_bins));
    return std::min(bin, max_bins - 1);
  };
  const double n = static_cast<double>(sorted.size());
  double entropy = 0.0;
  const double* cursor = sorted.data();
  const double* const end = sorted.data() + sorted.size();
  for (std::size_t b = 0; b < max_bins && cursor != end; ++b) {
    const double* next = std::partition_point(
        cursor, end, [&](double x) { return bin_of(x) <= b; });
    const auto count = static_cast<std::size_t>(next - cursor);
    cursor = next;
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log(p);
  }
  return entropy;
}

int benford_first_digit(double x) noexcept {
  double v = std::abs(x);
  if (v == 0.0 || !std::isfinite(v)) return 0;
  while (v >= 10.0) v /= 10.0;
  while (v < 1.0) v *= 10.0;
  return static_cast<int>(v);  // 1..9
}

double benford_correlation_from_counts(
    const std::array<std::uint32_t, 9>& counts, std::size_t counted) {
  if (counted == 0) return 0.0;
  std::array<double, 9> observed{};
  for (std::size_t i = 0; i < 9; ++i) {
    observed[i] =
        static_cast<double>(counts[i]) / static_cast<double>(counted);
  }
  std::array<double, 9> benford{};
  for (std::size_t d = 1; d <= 9; ++d) {
    benford[d - 1] = std::log10(1.0 + 1.0 / static_cast<double>(d));
  }
  return tensor::pearson_correlation(observed, benford);
}

double benford_correlation(std::span<const double> xs) {
  std::array<std::uint32_t, 9> counts{};
  std::size_t counted = 0;
  for (double x : xs) {
    const int digit = benford_first_digit(x);
    if (digit == 0) continue;
    ++counts[static_cast<std::size_t>(digit - 1)];
    ++counted;
  }
  return benford_correlation_from_counts(counts, counted);
}

LinearTrendResult linear_trend(std::span<const double> xs) noexcept {
  LinearTrendResult result;
  const std::size_t n = xs.size();
  if (n < 2) return result;
  const double nd = static_cast<double>(n);
  const double t_mean = (nd - 1.0) / 2.0;
  // The mean and the least-squares sums both go through the lane kernels so
  // every linear_trend caller (batch and incremental alike) computes the
  // same bits.
  const double x_mean = kernels::lane_sum(xs) / nd;
  const auto s = kernels::trend_sums(xs, t_mean, x_mean);
  if (s.stt == 0.0) return result;
  result.slope = s.stx / s.stt;
  result.intercept = x_mean - result.slope * t_mean;
  result.r_squared = s.sxx == 0.0 ? 0.0 : (s.stx * s.stx) / (s.stt * s.sxx);
  return result;
}

}  // namespace prodigy::features
