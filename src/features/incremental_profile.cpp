#include "features/incremental_profile.hpp"

#include "features/kernels.hpp"
#include "features/registry.hpp"
#include "features/series_preprocess.hpp"
#include "tensor/stats.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace prodigy::features {

// ---------------------------------------------------------------------------
// SortedWindow

void SortedWindow::insert(double value) {
  if (blocks_.empty()) {
    blocks_.emplace_back().push_back(value);
    ++size_;
    return;
  }
  // First block whose largest element is >= value; earlier blocks hold only
  // smaller values, so inserting here keeps the concatenation sorted.
  auto bit = std::lower_bound(
      blocks_.begin(), blocks_.end(), value,
      [](const std::vector<double>& b, double v) { return b.back() < v; });
  if (bit == blocks_.end()) --bit;
  bit->insert(std::upper_bound(bit->begin(), bit->end(), value), value);
  ++size_;
  if (bit->size() > 2 * kTargetBlock) {
    const std::size_t half = bit->size() / 2;
    std::vector<double> hi(bit->begin() + static_cast<std::ptrdiff_t>(half),
                           bit->end());
    bit->resize(half);
    blocks_.insert(bit + 1, std::move(hi));
  }
}

bool SortedWindow::erase(double value) {
  // The first block with back() >= value must contain the value if any
  // block does: a preceding block with back() >= value would sandwich its
  // back between value occurrences, forcing back() == value.
  auto bit = std::lower_bound(
      blocks_.begin(), blocks_.end(), value,
      [](const std::vector<double>& b, double v) { return b.back() < v; });
  if (bit == blocks_.end()) return false;
  const auto it = std::lower_bound(bit->begin(), bit->end(), value);
  if (it == bit->end() || *it != value) return false;
  bit->erase(it);
  if (bit->empty()) blocks_.erase(bit);
  --size_;
  return true;
}

void SortedWindow::clear() {
  blocks_.clear();
  size_ = 0;
}

void SortedWindow::rebuild(std::span<const double> values) {
  clear();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); i += kTargetBlock) {
    const std::size_t count = std::min(kTargetBlock, sorted.size() - i);
    blocks_.emplace_back(sorted.begin() + static_cast<std::ptrdiff_t>(i),
                         sorted.begin() + static_cast<std::ptrdiff_t>(i + count));
  }
  size_ = sorted.size();
}

void SortedWindow::copy_sorted(util::AlignedVec<double>& out) const {
  out.clear();
  out.reserve(size_);
  for (const auto& block : blocks_) {
    out.insert(out.end(), block.begin(), block.end());
  }
}

// ---------------------------------------------------------------------------
// IncrementalNodeExtractor

namespace {

/// Copies `count` consecutive ring entries starting at global index
/// `start` into `out`.
void copy_ring(std::span<const double> ring, std::uint64_t start,
               std::size_t count, double* out) {
  const std::size_t cap = ring.size();
  const std::size_t slot = static_cast<std::size_t>(start % cap);
  const std::size_t first = std::min(count, cap - slot);
  std::copy_n(ring.data() + slot, first, out);
  std::copy_n(ring.data(), count - first, out + first);
}

struct ExtremaScan {
  double min = 0.0, max = 0.0;
  std::size_t first_max = 0, last_max = 0, first_min = 0, last_min = 0;
};

/// The SeriesProfile pass-1 extrema loop, verbatim, so incremental rescans
/// reproduce the batch tie rules (first strict, last loose) bit for bit.
ExtremaScan scan_extrema(std::span<const double> xs) {
  ExtremaScan r;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] > xs[r.first_max]) r.first_max = i;
    if (xs[i] < xs[r.first_min]) r.first_min = i;
    if (!(xs[r.last_max] > xs[i])) r.last_max = i;
    if (!(xs[r.last_min] < xs[i])) r.last_min = i;
  }
  if (!xs.empty()) {
    r.min = xs[r.first_min];
    r.max = xs[r.first_max];
  }
  return r;
}

}  // namespace

struct IncrementalNodeExtractor::MetricState {
  // Rings indexed by global row index modulo capacity.  `raw` (capacity W)
  // feeds the exact fallback; `pre` (capacity W + 1, so the retiring pair
  // is still readable) holds the streaming-cleaned value g[t]: the
  // gap-interpolated gauge value, or the first difference of the
  // gap-interpolated raws for counters.  `tainted` flags rows whose raw
  // value was non-finite (raw-indexed; written at arrival, never by gap
  // resolution).
  std::vector<double> raw;
  std::vector<double> pre;
  std::vector<std::uint8_t> tainted;

  // Gap resolution.  Non-finite raw rows are held out of the accumulators
  // (only their positions are remembered) until the next finite sample
  // arrives; the run is then filled with the batch linear_interpolate
  // arithmetic and pushed.  Interpolation is local — a gap's filled values
  // depend only on its two finite anchors — so every window that contains
  // the whole gap sees values bit-identical to the batch cleaning, and only
  // windows where the gap straddles the window start (left anchor expired:
  // the batch back-fill rule applies) or is still unresolved at emission
  // need the exact fallback.  While a gap is open the accumulator cursor
  // trails the raw cursor by the run length.
  bool in_gap = false;
  std::uint64_t gap_start = 0;
  double last_raw = 0.0;  // last resolved raw: gap anchor + counter diff base
  bool has_raw = false;
  std::uint64_t hard_until = 0;  // emissions with end <= this must fall back

  // Rolling shifted sum over the window's g values: the drift sentinel
  // that cross-checks push/retire consistency against the exact
  // per-emission sum.  (All linear aggregates — sum, energy, successive
  // differences — are recomputed exactly per emission; only the sorted
  // window, the extrema, and the sliding DFT carry state, because those
  // are the structures whose from-scratch rebuild is super-linear.)
  double k_shift = 0.0;    // K: re-centered at each rebuild
  double sum_shift = 0.0;  // sum of (g - K)
  SortedWindow sorted;
  bool needs_rebuild = false;

  // Extrema over g with global indices (gauges only; counter windows
  // rescan at emission because their first element differs from g).
  bool extrema_valid = false;
  double min_v = 0.0, max_v = 0.0;
  std::uint64_t first_max = 0, last_max = 0, first_min = 0, last_min = 0;

  // Sliding DFT: bin k = sum over the frame of g[u] * w^{ku} (global
  // phase, w = e^{-2*pi*i/W}), stored planar (separate re/im arrays, both
  // 64-byte aligned) so the kernel TU's apply loop runs unit-stride vector
  // loads.  `pending` holds (g[u] - g[u-W]) deltas not yet applied;
  // `synced` is the frame end the bins represent.
  util::AlignedVec<double> bin_re;
  util::AlignedVec<double> bin_im;
  util::AlignedVec<double> pending;
  std::uint64_t synced = 0;
  bool sdft_resync = true;

  // Rolling integer window statistics.  Bit b of peak_flags[t % W] records
  // whether position t is a strict local maximum within kPeakSupports[b]
  // neighbours on each side of the g sequence; the bit for support s is
  // written when row t + s arrives (the last neighbour it needs), so at
  // emission every position the batch extractor would count has its flag.
  // digit_counts is the Benford first-digit histogram of the window's g
  // values.  Both slide as integers — bit-exact by construction — and
  // counter windows apply the f[0] = f[1] substitution as an O(support)
  // flag recheck / O(1) digit swap at emission.
  std::vector<std::uint8_t> peak_flags;
  std::array<std::uint32_t, 9> digit_counts{};
  std::uint32_t digit_counted = 0;  // finite, non-zero g in the window

  std::uint64_t emissions_since_rebuild = 0;

  // Per-metric stats (summed by stats()).
  std::uint64_t exact_fallbacks = 0;
  std::uint64_t scheduled_recomputes = 0;
  std::uint64_t drift_recomputes = 0;
};

struct IncrementalNodeExtractor::Impl {
  std::size_t cols = 0;
  IncrementalConfig config;
  std::vector<std::uint8_t> is_counter;
  bool use_sdft = false;
  // Exact twiddle table w^j, j in [0, W), planar for the kernel TU.
  util::AlignedVec<double> tw_re;
  util::AlignedVec<double> tw_im;
  std::vector<MetricState> states;
  std::uint64_t pushed = 0;
  std::uint64_t windows = 0;
  bool poisoned = false;

  void init_state(MetricState& st) const {
    const std::size_t W = config.window;
    st = MetricState();
    st.raw.assign(W, 0.0);
    st.pre.assign(W + 1, 0.0);
    st.tainted.assign(W, 0);
    st.peak_flags.assign(W, 0);
  }

  void push_raw(MetricState& st, std::size_t m, double x, std::uint64_t p);
  void push_resolved(MetricState& st, std::size_t m, double value,
                     std::uint64_t q);
  void rebuild_state(MetricState& st, std::uint64_t end) const;
  void extract_metric(MetricState& st, std::size_t m, std::span<double> out,
                      FeatureScratch& scratch, std::uint64_t end);
  void compute_spectral(MetricState& st, SeriesProfile& p,
                        std::span<const double> f, double f0, double g_s,
                        std::uint64_t start, std::uint64_t end, bool counter,
                        FeatureScratch& scratch);
  IncrementalStats sum_stats() const;
};

void IncrementalNodeExtractor::Impl::push_raw(MetricState& st, std::size_t m,
                                              double x, std::uint64_t p) {
  const std::size_t W = config.window;
  st.raw[static_cast<std::size_t>(p % W)] = x;
  st.tainted[static_cast<std::size_t>(p % W)] = std::isfinite(x) ? 0 : 1;
  if (!std::isfinite(x)) {
    if (!st.in_gap) {
      st.in_gap = true;
      st.gap_start = p;
    }
    return;
  }
  if (st.in_gap) {
    // Resolve the run [gap_start, p) with the batch linear_interpolate
    // arithmetic.  The offsets below are the same small integers the batch
    // pass forms from window-relative indices, so the filled values are
    // bit-identical in any window containing both anchors.  Without a left
    // anchor (the stream opened with a gap) the batch back-fill rule
    // applies; every window where that rule could be window-dependent has
    // a tainted first row and falls back anyway.
    const double lo = st.last_raw;
    const bool anchored = st.has_raw;
    for (std::uint64_t q = st.gap_start; q < p; ++q) {
      double value = x;
      if (anchored) {
        const double t = static_cast<double>(q - st.gap_start + 1) /
                         static_cast<double>(p - st.gap_start + 1);
        value = lo + (x - lo) * t;
      }
      push_resolved(st, m, value, q);
    }
    st.in_gap = false;
  }
  push_resolved(st, m, x, p);
}

void IncrementalNodeExtractor::Impl::push_resolved(MetricState& st,
                                                   std::size_t m, double value,
                                                   std::uint64_t q) {
  const std::size_t W = config.window;
  double g_old = 0.0;
  if (q >= W) {
    // Retire row q - W: read everything before this push overwrites slots.
    g_old = st.pre[static_cast<std::size_t>((q - W) % (W + 1))];
    st.sum_shift -= g_old - st.k_shift;
    if (!st.sorted.erase(g_old)) st.needs_rebuild = true;
    if (const int d = benford_first_digit(g_old); d != 0) {
      --st.digit_counts[static_cast<std::size_t>(d - 1)];
      --st.digit_counted;
    }
  }

  double g = is_counter[m] ? (st.has_raw ? value - st.last_raw : 0.0) : value;
  if (!std::isfinite(g)) {
    // Finite raws can still produce a non-finite g (counter diff overflow,
    // or an interpolated overflow): keep the accumulators poison-free and
    // force the exact path for every window that contains this row.
    g = 0.0;
    st.hard_until = std::max(st.hard_until, q + W);
  }
  st.last_raw = value;
  st.has_raw = true;

  st.pre[static_cast<std::size_t>(q % (W + 1))] = g;
  st.sum_shift += g - st.k_shift;
  st.sorted.insert(g);
  if (const int d = benford_first_digit(g); d != 0) {
    ++st.digit_counts[static_cast<std::size_t>(d - 1)];
    ++st.digit_counted;
  }

  // Peak flags: this row is the last right-neighbour position q - s needs,
  // so evaluate each support's flag there with the batch comparison rule
  // (strictly greater than every neighbour within the support radius).
  // The pre ring (capacity W + 1) still holds all 2s + 1 rows involved
  // whenever the support is usable at all (W >= 2s + 1).
  {
    const std::size_t cap = W + 1;
    for (std::size_t b = 0; b < kPeakSupportCount; ++b) {
      const std::size_t s = kPeakSupports[b];
      if (W < 2 * s + 1 || q < 2 * s) continue;
      const std::uint64_t t = q - s;
      const std::size_t tc = static_cast<std::size_t>(t % cap);
      const double centre = st.pre[tc];
      bool is_peak = true;
      std::size_t li = tc, ri = tc;
      for (std::size_t k = 1; k <= s; ++k) {
        li = li == 0 ? cap - 1 : li - 1;
        ri = ri + 1 == cap ? 0 : ri + 1;
        if (centre <= st.pre[li] || centre <= st.pre[ri]) {
          is_peak = false;
          break;
        }
      }
      auto& slot = st.peak_flags[static_cast<std::size_t>(t % W)];
      const auto bit = static_cast<std::uint8_t>(1u << b);
      slot = static_cast<std::uint8_t>((slot & ~bit) | (is_peak ? bit : 0u));
    }
  }

  if (use_sdft && !st.sdft_resync) {
    if (st.pending.size() >= W) {
      // Caller fell more than a full window behind; resync from the ring.
      st.sdft_resync = true;
      st.pending.clear();
    } else {
      st.pending.push_back(g - g_old);
    }
  }

  if (!is_counter[m]) {
    if (!st.extrema_valid) {
      st.extrema_valid = true;
      st.min_v = st.max_v = g;
      st.first_max = st.last_max = st.first_min = st.last_min = q;
    } else {
      if (g > st.max_v) {
        st.max_v = g;
        st.first_max = st.last_max = q;
      } else if (!(st.max_v > g)) {
        st.last_max = q;
      }
      if (g < st.min_v) {
        st.min_v = g;
        st.first_min = st.last_min = q;
      } else if (!(st.min_v < g)) {
        st.last_min = q;
      }
    }
  }
}

void IncrementalNodeExtractor::Impl::rebuild_state(MetricState& st,
                                                   std::uint64_t end) const {
  const std::size_t W = config.window;
  const std::uint64_t start = end - W;

  std::vector<double> window(W);
  copy_ring(st.pre, start, W, window.data());

  double sum = 0.0;
  for (double g : window) sum += g;
  st.k_shift = sum / static_cast<double>(W);  // re-center at the window mean
  st.sum_shift = 0.0;
  for (double g : window) st.sum_shift += g - st.k_shift;
  st.sorted.rebuild(window);

  const ExtremaScan ex = scan_extrema(window);
  st.extrema_valid = true;
  st.min_v = ex.min;
  st.max_v = ex.max;
  st.first_max = start + ex.first_max;
  st.last_max = start + ex.last_max;
  st.first_min = start + ex.first_min;
  st.last_min = start + ex.last_min;

  st.sdft_resync = true;
  st.pending.clear();
  st.needs_rebuild = false;
}

void IncrementalNodeExtractor::Impl::compute_spectral(
    MetricState& st, SeriesProfile& p, std::span<const double> f, double f0,
    double g_s, std::uint64_t start, std::uint64_t end, bool counter,
    FeatureScratch& scratch) {
  const std::size_t W = config.window;
  if (!use_sdft) {
    // The cost model picked the per-emission FFT: identical arithmetic to
    // the batch path, so the spectral family stays bit-exact.
    power_spectrum(f, scratch.fft, scratch.power);
    p.power = scratch.power;
    p.spectral = spectral_summary_from_power(scratch.power);
    return;
  }

  const std::size_t half = W / 2;
  const std::size_t bins = half + 1;
  bool fft_path = st.sdft_resync || st.pending.size() != end - st.synced;

  if (!fft_path) {
    // Apply the pending deltas with the fixed global phase: each sample at
    // global index u contributes delta * w^{ku}; the exact twiddle table
    // means the phase itself never drifts, only the bin accumulations.
    // The kernel keeps the delta loop outer and vectorizes across bins
    // (each bin still sees its deltas in ascending order), computing the
    // twiddle index as the low bits of k * u — zero deltas are skipped
    // inside, so constant stretches still cost nothing.
    kernels::sdft_apply(st.bin_re.data(), st.bin_im.data(), bins,
                        tw_re.data(), tw_im.data(),
                        static_cast<std::uint32_t>(W),
                        static_cast<std::size_t>(st.synced % W), st.pending);
    st.pending.clear();
    st.synced = end;

    // Corrected one-sided spectrum + Parseval drift check against the
    // exactly-known window energy (variance * W, mean-removed).  The
    // counter correction and |.|^2 are the componentwise expansion of the
    // complex ops used before the planar split.
    scratch.power.resize(bins);
    const double delta_c = f0 - g_s;  // counter boundary rule, 0 for gauges
    const std::size_t s_idx = static_cast<std::size_t>(start % W);
    double e_spec = 0.0;
    for (std::size_t k = 1; k < bins; ++k) {
      double br = st.bin_re[k];
      double bi = st.bin_im[k];
      if (counter) {
        const std::size_t idx = (k * s_idx) % W;
        br += delta_c * tw_re[idx];
        bi += delta_c * tw_im[idx];
      }
      const double pw = br * br + bi * bi;
      scratch.power[k] = pw;
      e_spec += (k == half) ? pw : 2.0 * pw;
    }
    e_spec /= static_cast<double>(W);
    const double dc = p.sum - static_cast<double>(W) * p.mean;
    scratch.power[0] = dc * dc;
    const double e_time = p.variance * static_cast<double>(W);
    if (std::abs(e_spec - e_time) > config.drift_tolerance * e_time) {
      // Covers both accumulated SDFT drift and the degenerate
      // near-constant window (e_time ~ 0), where the sliding bins hold
      // only rounding noise and the exact FFT must decide the spectrum.
      fft_path = true;
      ++st.drift_recomputes;
    }
  }

  if (fft_path) {
    power_spectrum(f, scratch.fft, scratch.power);  // exact batch spectrum
    // Resync the sliding bins from the mean-removed transform F (the FFT
    // left it in scratch.fft; padded == W since W is a power of two here):
    // for k >= 1 the mean term vanishes (sum of w^{kj} over a full period
    // is zero), so  A_k = w^{k*start} * (F_k + (g_s - f0)), expanded here
    // as the planar complex multiply.
    const std::size_t s_idx = static_cast<std::size_t>(start % W);
    st.bin_re.resize(bins);
    st.bin_im.resize(bins);
    const double back_c = g_s - f0;  // undo the counter boundary rule
    for (std::size_t k = 1; k < bins; ++k) {
      const std::size_t idx = (k * s_idx) % W;
      const double fr = scratch.fft[k].real() + back_c;
      const double fi = scratch.fft[k].imag();
      st.bin_re[k] = tw_re[idx] * fr - tw_im[idx] * fi;
      st.bin_im[k] = tw_re[idx] * fi + tw_im[idx] * fr;
    }
    double sum_g = p.sum;
    if (counter) sum_g += g_s - f0;
    st.bin_re[0] = sum_g;
    st.bin_im[0] = 0.0;
    st.pending.clear();
    st.synced = end;
    st.sdft_resync = false;
  }

  p.power = scratch.power;
  p.spectral = spectral_summary_from_power(scratch.power);
}

void IncrementalNodeExtractor::Impl::extract_metric(MetricState& st,
                                                    std::size_t m,
                                                    std::span<double> out,
                                                    FeatureScratch& scratch,
                                                    std::uint64_t end) {
  const std::size_t W = config.window;
  const std::uint64_t start = end - W;
  const bool counter = is_counter[m] != 0;

  // Interior gaps interpolate identically in every window that contains
  // them, so they stay on the incremental path.  The batch cleaning is
  // window-local only at the edges: fall back exactly when (a) a gap is
  // still unresolved (its tail reaches the window end and the batch
  // forward-fill rule applies), (b) the window's first row was non-finite
  // (the gap's left anchor expired and the batch back-fill rule applies),
  // or (c) a row in the window produced a non-finite cleaned value.
  if (st.in_gap || st.tainted[static_cast<std::size_t>(start % W)] != 0 ||
      end <= st.hard_until) {
    // Run the exact batch cleaning over the raw ring (window-local, like
    // preprocess_node) and the full profile.  Bit-identical to the batch
    // path by construction.
    ++st.exact_fallbacks;
    scratch.column.resize(W);
    copy_ring(st.raw, start, W, scratch.column.data());
    if (config.interpolate) linear_interpolate(scratch.column);
    if (counter) counter_to_rate_inplace(scratch.column);
    compute_all_features(scratch.column, out, scratch);
    return;
  }

  // Materialize the cleaned window f.  For counters the stream keeps
  // global diffs, so only f[0] differs (the batch window-local boundary
  // rule rates[0] = rates[1]); everything carried incrementally over g is
  // corrected for that single element in O(1) below.
  scratch.column.resize(W);
  copy_ring(st.pre, start, W, scratch.column.data());
  const double g_s = scratch.column[0];
  if (counter) scratch.column[0] = scratch.column[1];
  const std::span<const double> f(scratch.column.data(), W);
  const double f0 = f[0];

  // Exact linear aggregates: the same lane kernel the batch profile's
  // pass 1 uses, so every feature derived from sum/energy is bit-exact
  // against it.  The rolling-sum drift sentinel cross-checks the carried
  // structures against the exact sum.
  const auto se = kernels::sum_energy(f);
  const double sum_f = se.sum;
  const double energy_f = se.energy;
  double sum_g = sum_f;
  if (counter) sum_g += g_s - f0;
  const double rolling_sum =
      st.sum_shift + static_cast<double>(W) * st.k_shift;
  const double scale =
      std::sqrt(std::max(0.0, energy_f) * static_cast<double>(W));

  bool rebuild = st.needs_rebuild;
  if (++st.emissions_since_rebuild >= config.recompute_interval) {
    rebuild = true;
    ++st.scheduled_recomputes;
  } else if (std::abs(rolling_sum - sum_g) >
             config.drift_tolerance * std::max(scale, 1e-12)) {
    rebuild = true;
    ++st.drift_recomputes;
  }
  if (rebuild) {
    rebuild_state(st, end);
    st.emissions_since_rebuild = 0;
  }

  SeriesProfile p;
  p.xs = f;
  p.n = W;
  p.sum = sum_f;
  p.mean = sum_f / static_cast<double>(W);
  p.variance = kernels::centered_sq_sum(f, p.mean) / static_cast<double>(W);
  p.stddev = std::sqrt(p.variance);

  // Exact pass 3 through the batch profile's kernel: f already carries the
  // counter-mode f[0] = f[1] substitution, so no boundary corrections are
  // needed and the result is bit-identical to the batch profile.
  p.abs_energy = energy_f;
  p.abs_change_sum = kernels::abs_change_sum(f);

  // Extrema: incremental state with expiry-aware rescan (counters always
  // rescan because their f[0] differs from the tracked g[start]).
  if (counter || !st.extrema_valid || st.first_max < start ||
      st.first_min < start) {
    const ExtremaScan ex = scan_extrema(f);
    p.min = ex.min;
    p.max = ex.max;
    p.first_max = ex.first_max;
    p.last_max = ex.last_max;
    p.first_min = ex.first_min;
    p.last_min = ex.last_min;
    if (!counter) {
      st.extrema_valid = true;
      st.min_v = ex.min;
      st.max_v = ex.max;
      st.first_max = start + ex.first_max;
      st.last_max = start + ex.last_max;
      st.first_min = start + ex.first_min;
      st.last_min = start + ex.last_min;
    }
  } else {
    p.min = st.min_v;
    p.max = st.max_v;
    p.first_max = static_cast<std::size_t>(st.first_max - start);
    p.last_max = static_cast<std::size_t>(st.last_max - start);
    p.first_min = static_cast<std::size_t>(st.first_min - start);
    p.last_min = static_cast<std::size_t>(st.last_min - start);
  }

  // Mean-relative run statistics: the batch profile's kernel (integer
  // counts, bit-exact under any vector width).
  {
    const auto rstats = kernels::run_stats(f, p.mean);
    p.count_above = rstats.count_above;
    p.count_below = rstats.count_below;
    p.longest_above = rstats.longest_above;
    p.longest_below = rstats.longest_below;
    p.crossings = rstats.crossings;
  }

  // Order statistics: O(W) concatenation of the sorted chunks reproduces
  // std::sort(f) bit-exactly (plus the one-element counter swap).
  st.sorted.copy_sorted(scratch.sorted);
  if (counter) {
    const auto rm = std::lower_bound(scratch.sorted.begin(),
                                     scratch.sorted.end(), g_s);
    scratch.sorted.erase(rm);
    const auto at = std::lower_bound(scratch.sorted.begin(),
                                     scratch.sorted.end(), f0);
    scratch.sorted.insert(at, f0);
  }
  p.sorted = scratch.sorted;
  p.nan_count = 0;  // untainted by definition of this path

  // Rolling integer window statistics.  The counts below are the exact
  // integers the batch extractors would tally over f: for gauges f == g on
  // the whole window; for counters only f[0] differs, which moves at most
  // one peak flag (position start + s is the only counted position with
  // start in its neighbourhood) and swaps one Benford digit.  Integer
  // counts make the derived features bit-exact, so the registry skips its
  // O(support * W) peak rescans and the digit loop.
  RollingStats rs;
  rs.has_peaks = true;
  const std::size_t s0 = static_cast<std::size_t>(start % W);
  for (std::size_t b = 0; b < kPeakSupportCount; ++b) {
    const std::size_t s = kPeakSupports[b];
    std::size_t peaks = 0;
    if (W >= 2 * s + 1) {
      const auto bit = static_cast<std::uint8_t>(1u << b);
      // Ring slots (s0 + i) mod W for i in [s, W - s) form at most two
      // contiguous byte runs; tally each with the vector popcount kernel.
      const std::size_t lo = s0 + s;       // unwrapped first slot
      const std::size_t hi = s0 + W - s;   // unwrapped one-past-last slot
      const std::span<const std::uint8_t> flags(st.peak_flags);
      if (hi <= W) {
        peaks = kernels::count_flag_bits(flags.subspan(lo, hi - lo), bit);
      } else if (lo >= W) {
        peaks =
            kernels::count_flag_bits(flags.subspan(lo - W, hi - lo), bit);
      } else {
        peaks = kernels::count_flag_bits(flags.subspan(lo, W - lo), bit) +
                kernels::count_flag_bits(flags.subspan(0, hi - W), bit);
      }
      if (counter) {
        // Recheck the one flag whose neighbourhood includes f[0].
        bool is_peak = true;
        for (std::size_t k = 1; k <= s && is_peak; ++k) {
          if (f[s] <= f[s - k] || f[s] <= f[s + k]) is_peak = false;
        }
        const std::size_t slot = s0 + s < W ? s0 + s : s0 + s - W;
        const bool carried = (st.peak_flags[slot] & bit) != 0;
        if (is_peak && !carried) {
          ++peaks;
        } else if (!is_peak && carried) {
          --peaks;
        }
      }
    }
    rs.peaks[b] = static_cast<double>(peaks) / static_cast<double>(W);
  }
  std::array<std::uint32_t, 9> digits = st.digit_counts;
  std::uint32_t counted = st.digit_counted;
  if (counter) {
    if (const int d = benford_first_digit(g_s); d != 0) {
      --digits[static_cast<std::size_t>(d - 1)];
      --counted;
    }
    if (const int d = benford_first_digit(f0); d != 0) {
      ++digits[static_cast<std::size_t>(d - 1)];
      ++counted;
    }
  }
  rs.has_benford = true;
  rs.benford = benford_correlation_from_counts(digits, counted);
  p.rolling = &rs;

  compute_spectral(st, p, f, f0, g_s, start, end, counter, scratch);

  p.trend = linear_trend(f);

  compute_features_from_profile(p, out);
}

SpectralCostModel spectral_cost_model(std::size_t window,
                                      std::size_t hop) noexcept {
  SpectralCostModel m;
  const double W = static_cast<double>(window);
  // Per-emission complex-op counts, weighted by measured throughput.  The
  // SDFT applies `hop` deltas to each of W/2 + 1 bins; the FFT recompute
  // runs (W/2)*log2(W) butterflies plus the O(W) buffer fill, with a ~1.5x
  // constant for bit reversal and twiddle recurrences.  kSdftVectorFactor
  // converts SDFT bin-updates into FFT model units and is calibrated from
  // bench/feature_extraction on the reference avx512 host:
  //   * BM_SdftApply: 8.46us for 16 deltas x 513 bins at W=1024 and 0.55us
  //     for 16 x 33 at W=64 — ~1.04ns per bin-update (the gathered-twiddle
  //     vector path; gather-bound, so nearly width-independent).
  //   * power_spectrum: 1.72us at W=64 (352 units), 43.7us at W=1024
  //     (8704 units) — ~5.0ns per FFT model unit (serial std::complex
  //     butterflies).
  //   => factor = 1.04 / 5.0 ~= 0.21.  Crossover at W=64 lands at hop 51
  //      (0.21 * 51 * 33 > 352), matching the measured per-emission times.
  // Pick whichever is cheaper for the shape; the FFT side is also bit-exact
  // with the batch path, so it doubles as the drift/rebuild fallback.
  constexpr double kSdftVectorFactor = 0.21;
  m.sdft_cost =
      kSdftVectorFactor * static_cast<double>(hop) * (W / 2.0 + 1.0);
  m.fft_cost = 1.5 * (W / 2.0) * std::log2(W) + W;
  const bool pow2 = window >= 2 && (window & (window - 1)) == 0;
  m.use_sdft = pow2 && m.sdft_cost < m.fft_cost;
  return m;
}

IncrementalStats IncrementalNodeExtractor::Impl::sum_stats() const {
  IncrementalStats s;
  s.windows = windows;
  for (const auto& st : states) {
    s.exact_fallbacks += st.exact_fallbacks;
    s.scheduled_recomputes += st.scheduled_recomputes;
    s.drift_recomputes += st.drift_recomputes;
  }
  return s;
}

IncrementalNodeExtractor::IncrementalNodeExtractor(
    std::size_t cols, std::vector<ColumnKind> kinds, IncrementalConfig config)
    : impl_(std::make_unique<Impl>()) {
  if (cols == 0) {
    throw std::invalid_argument("IncrementalNodeExtractor: cols must be > 0");
  }
  if (config.window < 2 || config.hop == 0) {
    throw std::invalid_argument(
        "IncrementalNodeExtractor: window must be >= 2 and hop >= 1");
  }
  if (config.recompute_interval == 0) config.recompute_interval = 1;
  Impl& im = *impl_;
  im.cols = cols;
  im.config = config;
  im.is_counter.assign(cols, 0);
  for (std::size_t m = 0; m < cols && m < kinds.size(); ++m) {
    im.is_counter[m] =
        (config.diff_counters && kinds[m] == ColumnKind::kCounter) ? 1 : 0;
  }

  const std::size_t W = config.window;
  im.use_sdft = spectral_cost_model(W, config.hop).use_sdft;
  if (im.use_sdft) {
    im.tw_re.resize(W);
    im.tw_im.resize(W);
    for (std::size_t j = 0; j < W; ++j) {
      const double angle =
          -2.0 * std::numbers::pi * static_cast<double>(j) / static_cast<double>(W);
      im.tw_re[j] = std::cos(angle);
      im.tw_im[j] = std::sin(angle);
    }
  }

  im.states.resize(cols);
  for (auto& st : im.states) im.init_state(st);
}

IncrementalNodeExtractor::~IncrementalNodeExtractor() = default;

bool IncrementalNodeExtractor::absorb_and_extract(const tensor::Matrix& delta,
                                                  std::span<double> out) {
  Impl& im = *impl_;
  if (im.poisoned) {
    throw std::logic_error(
        "IncrementalNodeExtractor: a previous absorb failed mid-update; "
        "reset() before feeding more rows");
  }
  if (delta.cols() != im.cols) {
    throw std::invalid_argument("IncrementalNodeExtractor: delta width " +
                                std::to_string(delta.cols()) + " != " +
                                std::to_string(im.cols));
  }
  const std::size_t per_metric = features_per_metric();
  if (out.size() != im.cols * per_metric) {
    throw std::invalid_argument(
        "IncrementalNodeExtractor: bad output size");
  }

  const std::size_t rows = delta.rows();
  const std::uint64_t base = im.pushed;
  const std::uint64_t end = base + rows;
  const bool emit = end >= im.config.window;
  const IncrementalStats before = im.sum_stats();

  // Any exception below leaves some metrics half-absorbed; poison the
  // extractor so the caller must reset() (and refill) before continuing.
  im.poisoned = true;
  util::parallel_for(0, im.cols, [&](std::size_t m) {
    thread_local FeatureScratch scratch;
    MetricState& st = im.states[m];
    for (std::size_t r = 0; r < rows; ++r) {
      im.push_raw(st, m, delta(r, m), base + r);
    }
    if (emit) {
      im.extract_metric(st, m,
                        out.subspan(m * per_metric, per_metric), scratch, end);
    }
  });
  im.pushed = end;
  im.poisoned = false;

  if (emit) {
    ++im.windows;
    const IncrementalStats after = im.sum_stats();
    auto& registry = util::MetricsRegistry::global();
    registry.counter("prodigy_features_incremental_windows_total").increment();
    if (after.exact_fallbacks > before.exact_fallbacks) {
      registry.counter("prodigy_features_incremental_exact_fallbacks_total")
          .increment(after.exact_fallbacks - before.exact_fallbacks);
    }
    if (after.scheduled_recomputes > before.scheduled_recomputes) {
      registry
          .counter("prodigy_features_incremental_scheduled_recomputes_total")
          .increment(after.scheduled_recomputes - before.scheduled_recomputes);
    }
    if (after.drift_recomputes > before.drift_recomputes) {
      registry.counter("prodigy_features_incremental_drift_recomputes_total")
          .increment(after.drift_recomputes - before.drift_recomputes);
    }
  }
  return emit;
}

void IncrementalNodeExtractor::reset() {
  Impl& im = *impl_;
  for (auto& st : im.states) im.init_state(st);
  im.pushed = 0;
  im.poisoned = false;
}

std::size_t IncrementalNodeExtractor::cols() const noexcept {
  return impl_->cols;
}

std::size_t IncrementalNodeExtractor::window() const noexcept {
  return impl_->config.window;
}

bool IncrementalNodeExtractor::window_complete() const noexcept {
  return impl_->pushed >= impl_->config.window;
}

bool IncrementalNodeExtractor::uses_sliding_dft() const noexcept {
  return impl_->use_sdft;
}

IncrementalStats IncrementalNodeExtractor::stats() const {
  return impl_->sum_stats();
}

}  // namespace prodigy::features
