// Assembles per-sample feature vectors: every (metric, registry feature)
// pair becomes one column, named "<metric>::<sampler>::<feature>".  One row
// per compute node per application run — the paper's definition of a sample.
#pragma once

#include "features/registry.hpp"
#include "tensor/matrix.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace prodigy::features {

/// Per-row sample identity and ground truth.
struct SampleMeta {
  std::int64_t job_id = 0;
  std::int64_t component_id = 0;
  std::string app;
  std::string anomaly = "none";
};

/// A labeled feature dataset: design matrix + labels + provenance.
struct FeatureDataset {
  tensor::Matrix X;                        // (samples x features)
  std::vector<int> labels;                 // 0 healthy / 1 anomalous
  std::vector<SampleMeta> meta;            // size = rows
  std::vector<std::string> feature_names;  // size = cols

  std::size_t size() const noexcept { return labels.size(); }
  std::size_t anomalous_count() const noexcept;
  double anomaly_ratio() const noexcept;

  /// Row subset preserving labels/meta alignment.
  FeatureDataset select_rows(const std::vector<std::size_t>& indices) const;
  /// Column subset preserving feature names.
  FeatureDataset select_columns(const std::vector<std::size_t>& indices) const;
};

/// Full column names for the given metric names (catalog order x registry).
std::vector<std::string> feature_column_names(
    const std::vector<std::string>& metric_names);

/// Extracts the feature vector of one preprocessed node series; `values` is
/// (T x M) over the metric columns, NaN-free (run preprocessing first).
/// Output length = M * features_per_metric(), ordered metric-major.
std::vector<double> extract_node_features(const tensor::Matrix& values);

/// Concatenates datasets with identical columns (rows appended in order).
FeatureDataset concat(const FeatureDataset& a, const FeatureDataset& b);

}  // namespace prodigy::features
