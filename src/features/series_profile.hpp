// The shared-computation substrate of the feature-extraction engine.
//
// The registry's ~67 features per metric overlap heavily in what they need
// from a series: one FFT powers nine spectral features, one linear fit
// powers three trend features, one sorted copy powers eight order
// statistics, and ~20 extractors want the same mean/stddev.  A
// SeriesProfile computes every shared intermediate exactly once per series;
// the grouped extractors in registry.cpp then read from it.  Each shared
// quantity is accumulated with the same loop structure and operation order
// as the original standalone extractor, so grouped features are
// bit-identical to the per-feature implementations (guarded by
// tests/feature_parity_test.cpp).
#pragma once

#include "features/extractors.hpp"
#include "features/fft.hpp"
#include "util/aligned.hpp"

#include <complex>
#include <span>
#include <vector>

namespace prodigy::features {

/// Peak supports used by the `peaks` feature group.  Shared between the
/// batch registry and the incremental engine's rolling peak-flag ring so the
/// two paths can never drift apart.
inline constexpr std::size_t kPeakSupports[] = {1, 3, 5};
inline constexpr std::size_t kPeakSupportCount =
    sizeof(kPeakSupports) / sizeof(kPeakSupports[0]);

/// Window statistics the incremental engine carries as integer counts
/// (peak flags, Benford first-digit histogram).  Integer counts slide
/// bit-exactly, so the values here equal the batch extractors' output and
/// the registry can skip the O(n) rescans.  Null on the batch path.
struct RollingStats {
  bool has_peaks = false;
  double peaks[kPeakSupportCount] = {};  // number_peaks(xs, support)
  bool has_benford = false;
  double benford = 0.0;                  // benford_correlation(xs)
};

/// Reusable per-thread buffers for profile construction.  Hot callers
/// (extract_node_features) keep one per worker thread so a window's worth
/// of metrics is extracted without per-series allocations.  All buffers are
/// 64-byte aligned so the feature-kernel TU's full-width vector loads are
/// never split across cache lines.
struct FeatureScratch {
  util::AlignedVec<double> column;             // gathered metric series
  util::AlignedVec<double> sorted;             // sorted copy of the series
  util::AlignedVec<std::complex<double>> fft;  // FFT work buffer
  util::AlignedVec<double> power;              // one-sided power spectrum
};

/// Everything the grouped extractors share, computed in a handful of passes
/// (plus one sort and one FFT).  `xs`, `sorted` and `power` are views: `xs`
/// into the caller's series, `sorted`/`power` into the FeatureScratch used
/// to build the profile, so the profile is valid only while both outlive it.
struct SeriesProfile {
  std::span<const double> xs;
  std::size_t n = 0;

  // Moments (same formulas as tensor::sum/mean/variance/stddev).
  double sum = 0.0;
  double mean = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  double abs_energy = 0.0;  // sum of squares

  // Extrema and their first/last locations (ties kept like the
  // first_last_extreme helper in extractors.cpp: first strict, last loose).
  double min = 0.0;
  double max = 0.0;
  std::size_t first_max = 0;
  std::size_t last_max = 0;
  std::size_t first_min = 0;
  std::size_t last_min = 0;

  // Successive-difference statistics.
  double abs_change_sum = 0.0;  // sum |x[i] - x[i-1]| (n >= 2, else 0)

  // Mean-relative run statistics, one pass.
  std::size_t count_above = 0;
  std::size_t count_below = 0;
  std::size_t longest_above = 0;
  std::size_t longest_below = 0;
  std::size_t crossings = 0;

  /// Ascending copy of xs *excluding NaNs* (std::sort's ordering contract
  /// forbids them); `nan_count` records how many were dropped so the
  /// order-statistics consumers can propagate NaN instead of silently
  /// reading a truncated tail.
  std::span<const double> sorted;
  std::size_t nan_count = 0;
  std::span<const double> power;   // one-sided power spectrum of xs
  SpectralSummary spectral;
  LinearTrendResult trend;

  /// Set by the incremental engine when its rolling integer counts cover
  /// this window; batch-built profiles leave it null.
  const RollingStats* rolling = nullptr;
};

/// Builds the profile for one series, reusing the scratch buffers.  The
/// returned profile's spans point into `xs` and `scratch`.
SeriesProfile compute_series_profile(std::span<const double> xs,
                                     FeatureScratch& scratch);

}  // namespace prodigy::features
