// Series-level cleaning primitives (paper §4.2.1: interpolation of samples
// lost during collection, first-differencing of accumulated counters).
//
// Both the batch preprocessing pipeline (pipeline/preprocess.cpp) and the
// streaming incremental extractor's exact-fallback path
// (features/incremental_profile.cpp) must clean a series with bit-identical
// results, so the definitions live here, below both consumers in the
// library graph (pipeline links features, not the other way around).
#pragma once

#include <span>
#include <vector>

namespace prodigy::features {

/// Fills non-finite gaps by linear interpolation between finite
/// neighbours; leading/trailing gaps are filled with the nearest finite
/// value.  An all-non-finite series becomes all zeros.
void linear_interpolate(std::span<double> series);

/// In-place first difference (x[t] - x[t-1]); element 0 duplicates
/// element 1's diff so the length stays aligned with the gauges.  Series
/// shorter than 2 elements become all zeros.
void counter_to_rate_inplace(std::span<double> series);

/// Copying variant (the historical pipeline signature).
std::vector<double> counter_to_rate(std::span<const double> series);

}  // namespace prodigy::features
