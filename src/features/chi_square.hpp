// Chi-square feature selection (paper §3.2, §5.4.3).
//
// Mirrors scikit-learn's chi2 scorer: treats each non-negative feature as a
// frequency, compares per-class observed sums against the expectation under
// class-independence, and ranks features by the statistic.  The paper's
// selection stage is the only step that needs any anomalous labels (24-55
// samples suffice); training itself stays unsupervised.
#pragma once

#include "features/feature_matrix.hpp"

#include <vector>

namespace prodigy::features {

/// Per-feature chi-square statistic.  X must be non-negative (min-max scale
/// first, as the pipeline does); y holds class labels {0, 1}.
std::vector<double> chi2_scores(const tensor::Matrix& X, const std::vector<int>& y);

/// One cell's contribution (observed - expected)^2 / expected.  A zero
/// expectation with nonzero observation historically contributed nothing
/// (the guard silently skipped the cell, understating the statistic when
/// `expected` underflows to 0 for an extreme class imbalance); it now uses
/// a pseudo-count denominator of 0.5 — half the smallest meaningful
/// frequency, the standard continuity-style correction — so the cell
/// contributes a large-but-finite score.  expected == 0 && observed == 0
/// contributes 0.
double chi2_term(double observed, double expected) noexcept;

/// Indices of the k largest scores, in descending score order.
std::vector<std::size_t> top_k_indices(const std::vector<double>& scores,
                                       std::size_t k);

struct SelectionResult {
  std::vector<std::size_t> selected;  // column indices into the input dataset
  std::vector<double> scores;         // all column scores
};

/// End-to-end "efficient feature" selection: scores every column of the
/// (healthy + anomalous) selection dataset and keeps the top k.
SelectionResult select_features_chi2(const FeatureDataset& dataset, std::size_t k);

/// Label-free fallback for the fully-unsupervised deployment path (paper
/// §7 future work): ranks columns by variance of the min-max-scaled values.
SelectionResult select_features_variance(const FeatureDataset& dataset,
                                         std::size_t k);

}  // namespace prodigy::features
