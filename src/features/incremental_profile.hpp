// Incremental sliding-window feature extraction: the streaming counterpart
// of the single-pass SeriesProfile engine.
//
// Batch extraction recomputes all ~67 features from scratch for every
// emitted window — O(W log W) per metric per hop, dominated by the sort and
// the FFT.  For overlapping windows (hop H < window W) consecutive windows
// share W - H rows, so almost all of that work repeats.  An
// IncrementalNodeExtractor keeps per-metric rolling state that absorbs the
// H new rows and retires the H expired rows per hop:
//
//  * rolling abs-energy / abs-change accumulators (add new, subtract
//    retired) plus a K-shifted rolling sum used as a *drift sentinel*: the
//    exact window sum is recomputed each emission anyway (it is cheap and
//    makes mean-derived features bit-identical to the batch path), so
//    comparing it against the rolling sum bounds the accumulated float
//    drift of the whole accumulator family and triggers an exact rebuild
//    when it exceeds tolerance;
//  * a merge-of-sorted-chunks multiset (SortedWindow) whose O(W)
//    concatenation at emission reproduces the fully sorted window
//    bit-exactly, replacing the per-window O(W log W) sort behind the
//    8 order/quantile features;
//  * expiry-aware extrema: min/max and their first/last locations are
//    updated per push and re-scanned only when the retiring rows held the
//    recorded extreme;
//  * a sliding DFT with fixed global phase (A_k += (x_new - x_old) * w^{kt},
//    twiddles from one exact table, so the phase itself never drifts) for
//    the 9 spectral features, with a recomputed-FFT fallback when (a) the
//    per-emission SDFT update would cost more than the FFT (large hops,
//    non-power-of-two windows), (b) the Parseval check against the
//    exactly-known window energy exceeds tolerance, or (c) a scheduled
//    rebuild is due.
//
// Counter metrics are handled without reprocessing: the stream keeps global
// first differences r[t] = x[t] - x[t-1], and the batch path's window-local
// boundary rule (rates[0] = rates[1]) is applied as O(1) corrections to the
// sum/energy/abs-change/sorted/spectral state at emission time.
//
// Windows containing non-finite samples taint the incremental state and
// fall back to the exact batch computation (materialize raw rows ->
// linear_interpolate -> counter_to_rate -> compute_all_features), so
// NaN-bearing windows score bit-identically to the batch path.  All other
// windows match the batch oracle bit-exactly except for the documented
// accumulator-carried features (abs_energy, root_mean_square, the two
// abs-change aggregates) and the SDFT-carried spectral features, which
// match within the per-feature tolerances in DESIGN.md (guarded by
// tests/incremental_profile_test.cpp over >= 200 consecutive hops).
#pragma once

#include "features/series_profile.hpp"
#include "tensor/matrix.hpp"
#include "util/aligned.hpp"

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace prodigy::features {

/// How a column is cleaned before extraction (mirrors
/// telemetry::MetricKind without depending on the telemetry catalog).
enum class ColumnKind : std::uint8_t {
  kGauge,    // used as-is
  kCounter,  // first-differenced (rates), window-local boundary rule
};

struct IncrementalConfig {
  std::size_t window = 64;  // W: rows per emitted window (>= 2)
  std::size_t hop = 16;     // H: rows between emissions (only advisory for
                            // the SDFT-vs-FFT cost model; the extractor
                            // emits whenever the caller asks)
  bool interpolate = true;     // fallback path: fill non-finite gaps
  bool diff_counters = true;   // treat kCounter columns as counters
  /// Emissions between exact rebuilds of the rolling state (bounds float
  /// drift to what can accumulate across this many add/retire cycles).
  std::size_t recompute_interval = 64;
  /// Relative tolerance for the two drift sentinels (rolling-vs-exact
  /// window sum, and the SDFT Parseval check); exceeding either triggers
  /// an immediate exact rebuild.
  double drift_tolerance = 1e-9;
};

/// The SDFT-vs-FFT per-emission cost decision for a (window, hop) shape.
/// Exposed so tests can golden-pin the crossover and the bench can
/// sanity-check the model against measured throughput.
struct SpectralCostModel {
  double sdft_cost = 0.0;  // modelled per-emission SDFT apply cost
  double fft_cost = 0.0;   // modelled per-emission FFT recompute cost
  bool use_sdft = false;   // requires a power-of-two window
};

/// Evaluates the cost model the extractor's constructor uses to pick
/// between the sliding DFT and the per-emission FFT recompute.  The
/// constants are tuned to the vectorized kernel throughputs measured in
/// bench/feature_extraction (see docs/performance.md).
SpectralCostModel spectral_cost_model(std::size_t window,
                                      std::size_t hop) noexcept;

/// Counters aggregated across all metrics of one extractor.
struct IncrementalStats {
  std::uint64_t windows = 0;              // emissions (per extractor)
  std::uint64_t exact_fallbacks = 0;      // tainted metric-windows
  std::uint64_t scheduled_recomputes = 0; // interval-driven rebuilds
  std::uint64_t drift_recomputes = 0;     // sentinel-triggered rebuilds
};

/// Order-statistics structure for one sliding window: a sequence of small
/// sorted blocks whose concatenation is the ascending multiset of the
/// window's values.  insert/erase are O(W / B + B + log B) with block size
/// B; copy_sorted is a straight O(W) concatenation that reproduces
/// std::sort's output bit-exactly (equal doubles are interchangeable).
/// Values must be non-NaN (NaN-bearing windows use the exact fallback).
class SortedWindow {
 public:
  void insert(double value);
  /// Removes one instance; returns false if the value is absent (which
  /// indicates corrupted state — callers treat it as a rebuild trigger).
  bool erase(double value);
  void clear();
  /// Rebuilds from an unsorted window in O(W log W).
  void rebuild(std::span<const double> values);
  std::size_t size() const noexcept { return size_; }
  /// Overwrites `out` with all values in ascending order.  Takes the
  /// 64-byte-aligned scratch type: the concatenation feeds the feature
  /// kernels' vector loads.
  void copy_sorted(util::AlignedVec<double>& out) const;

 private:
  // Blocks split at 2 * kTargetBlock, so they stay cache-sized and the
  // per-insert memmove cost stays bounded.
  static constexpr std::size_t kTargetBlock = 64;
  std::vector<std::vector<double>> blocks_;  // nonempty, globally sorted
  std::size_t size_ = 0;
};

/// Per-node incremental extractor: one rolling state per metric column.
/// Thread-compatible (external synchronization; the streaming scorer calls
/// it from one per-node task at a time) — internally the per-metric work
/// fans out across util::parallel_for.
class IncrementalNodeExtractor {
 public:
  /// `kinds.size()` may be smaller than `cols`; extra columns are gauges.
  IncrementalNodeExtractor(std::size_t cols, std::vector<ColumnKind> kinds,
                           IncrementalConfig config);
  ~IncrementalNodeExtractor();

  IncrementalNodeExtractor(const IncrementalNodeExtractor&) = delete;
  IncrementalNodeExtractor& operator=(const IncrementalNodeExtractor&) = delete;

  /// Absorbs `delta` (rows x cols, time order: the rows new since the
  /// previous call — H rows in steady state, the full window for the
  /// first emission) and, if at least one full window has been absorbed,
  /// writes all cols * features_per_metric() features for the window
  /// ending at the last absorbed row into `out` (metric-major, same
  /// layout as extract_node_features) and returns true.  Returns false
  /// while the window is still filling (only after construction/reset).
  bool absorb_and_extract(const tensor::Matrix& delta, std::span<double> out);

  /// Drops all rolling state; the next window must be refilled from
  /// scratch.  Used by the scorer to recover from a failed absorb.
  void reset();

  std::size_t cols() const noexcept;
  std::size_t window() const noexcept;
  /// True once a full window has been absorbed since construction/reset.
  bool window_complete() const noexcept;
  /// True when the (window, hop) shape maintains a sliding DFT; false when
  /// the cost model picked the per-emission FFT recompute instead.
  bool uses_sliding_dft() const noexcept;
  IncrementalStats stats() const;

 private:
  struct MetricState;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prodigy::features
