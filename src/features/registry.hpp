// The feature registry: the named, parameterized catalog of per-series
// extractors applied to every metric (TSFRESH computes 794 features from 63
// characterization methods; this registry instantiates our extractor family
// into ~70 named features per metric).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace prodigy::features {

using FeatureFn = std::function<double(std::span<const double>)>;

struct FeatureDef {
  std::string name;  // e.g. "autocorrelation_lag_5"
  FeatureFn fn;
};

/// The fixed ordered registry; built once.
const std::vector<FeatureDef>& feature_registry();

/// Number of features computed per metric.
std::size_t features_per_metric();

/// Evaluates every registry feature on one series, in registry order.
/// Non-finite results are clamped to 0.0 so the matrix stays NaN-free.
std::vector<double> compute_all_features(std::span<const double> series);

}  // namespace prodigy::features
