// The feature registry: the named, parameterized catalog of per-series
// extractors applied to every metric (TSFRESH computes 794 features from 63
// characterization methods; this registry instantiates our extractor family
// into ~70 named features per metric).
//
// Features are organized as *groups* that share one SeriesProfile: a group
// emits several named features (e.g. "spectral" emits nine from one FFT)
// instead of the historical one-closure-per-feature design, which invoked
// the full FFT nine times per series.  The flat name order exposed by
// feature_registry() is unchanged, and per-feature values are bit-identical
// to the per-feature implementations (tests/feature_parity_test.cpp keeps
// those as reference oracles).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace prodigy::features {

struct SeriesProfile;
struct FeatureScratch;

struct FeatureDef {
  std::string name;   // e.g. "autocorrelation_lag_5"
  std::string group;  // owning group, e.g. "autocorrelation"
};

/// A batch of features computed together from one shared SeriesProfile.
struct FeatureGroup {
  std::string name;
  std::size_t first = 0;  // offset of the group's first feature in flat order
  std::size_t count = 0;  // number of features the group emits
  /// Writes `count` raw values to `out`; non-finite clamping happens in
  /// compute_all_features so group functions stay pure.
  std::function<void(const SeriesProfile&, double* out)> fn;
};

/// The fixed ordered registry (flat feature order; built once).
const std::vector<FeatureDef>& feature_registry();

/// The grouped extractors, in flat-order-covering sequence: group g spans
/// features [first, first + count) and groups tile the registry in order.
const std::vector<FeatureGroup>& feature_groups();

/// Number of features computed per metric.
std::size_t features_per_metric();

/// Evaluates every registry feature on one series, in registry order.
/// Non-finite results are clamped to 0.0 so the matrix stays NaN-free.
std::vector<double> compute_all_features(std::span<const double> series);

/// Hot-path variant: writes features_per_metric() values into `out` and
/// reuses `scratch` for the profile's sorted/FFT buffers (no allocations
/// once the scratch has warmed up).
void compute_all_features(std::span<const double> series, std::span<double> out,
                          FeatureScratch& scratch);

/// Evaluates the grouped extractors on an externally-built profile (the
/// incremental extractor assembles its SeriesProfile from rolling state
/// instead of compute_series_profile).  Applies the same non-finite -> 0
/// clamp as compute_all_features.
void compute_features_from_profile(const SeriesProfile& profile,
                                   std::span<double> out);

}  // namespace prodigy::features
