#include "features/feature_matrix.hpp"

#include "features/series_profile.hpp"
#include "tensor/ops.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

#include <stdexcept>

namespace prodigy::features {

std::size_t FeatureDataset::anomalous_count() const noexcept {
  std::size_t count = 0;
  for (int label : labels) count += label != 0 ? 1 : 0;
  return count;
}

double FeatureDataset::anomaly_ratio() const noexcept {
  return labels.empty()
             ? 0.0
             : static_cast<double>(anomalous_count()) / static_cast<double>(labels.size());
}

FeatureDataset FeatureDataset::select_rows(
    const std::vector<std::size_t>& indices) const {
  FeatureDataset out;
  out.X = X.select_rows(indices);
  out.feature_names = feature_names;
  out.labels.reserve(indices.size());
  out.meta.reserve(indices.size());
  for (const auto i : indices) {
    out.labels.push_back(labels.at(i));
    out.meta.push_back(meta.at(i));
  }
  return out;
}

FeatureDataset FeatureDataset::select_columns(
    const std::vector<std::size_t>& indices) const {
  FeatureDataset out;
  out.X = X.select_columns(indices);
  out.labels = labels;
  out.meta = meta;
  out.feature_names.reserve(indices.size());
  for (const auto i : indices) out.feature_names.push_back(feature_names.at(i));
  return out;
}

std::vector<std::string> feature_column_names(
    const std::vector<std::string>& metric_names) {
  const auto& registry = feature_registry();
  std::vector<std::string> names;
  names.reserve(metric_names.size() * registry.size());
  for (const auto& metric : metric_names) {
    for (const auto& def : registry) {
      names.push_back(metric + "::" + def.name);
    }
  }
  return names;
}

std::vector<double> extract_node_features(const tensor::Matrix& values) {
  util::StageTimer stage("features.extract");
  const std::size_t metrics = values.cols();
  const std::size_t rows = values.rows();
  const std::size_t per_metric = features_per_metric();
  std::vector<double> features(metrics * per_metric, 0.0);

  // Column-major extraction: gather each metric's series once, then run the
  // grouped registry over it, writing features in place.  Metrics are
  // independent -> parallel; each worker keeps a thread-local scratch so the
  // gather/sort/FFT buffers are allocated once per thread, not per metric.
  util::parallel_for(0, metrics, [&](std::size_t m) {
    thread_local FeatureScratch scratch;
    scratch.column.resize(rows);
    for (std::size_t t = 0; t < rows; ++t) scratch.column[t] = values(t, m);
    compute_all_features(
        scratch.column,
        std::span<double>(features.data() + m * per_metric, per_metric),
        scratch);
  });
  return features;
}

FeatureDataset concat(const FeatureDataset& a, const FeatureDataset& b) {
  if (a.size() == 0) return b;
  if (b.size() == 0) return a;
  if (a.feature_names != b.feature_names) {
    throw std::invalid_argument("concat: feature columns differ");
  }
  FeatureDataset out;
  out.X = tensor::vstack(a.X, b.X);
  out.feature_names = a.feature_names;
  out.labels = a.labels;
  out.labels.insert(out.labels.end(), b.labels.begin(), b.labels.end());
  out.meta = a.meta;
  out.meta.insert(out.meta.end(), b.meta.begin(), b.meta.end());
  return out;
}

}  // namespace prodigy::features
