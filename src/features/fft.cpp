#include "features/fft.hpp"

#include "features/kernels.hpp"
#include "tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace prodigy::features {

void fft_radix2(std::span<std::complex<double>> data) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if ((n & (n - 1)) != 0) {
    throw std::invalid_argument("fft_radix2: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const auto u = data[i + k];
        const auto v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void power_spectrum(std::span<const double> xs,
                    util::AlignedVec<std::complex<double>>& fft_buffer,
                    util::AlignedVec<double>& power) {
  if (xs.empty()) {
    power.assign(1, 0.0);
    return;
  }
  // Zero-padding audit (odd/non-power-of-two lengths): padding to 2^m does
  // NOT change the frequency axis, only its sampling.  Bin k of a P-point
  // transform sits at normalized frequency k / (P/2) with 1.0 = Nyquist,
  // regardless of the true sample count n: the padded signal has the same
  // sample period, so Nyquist is the same physical frequency, and
  // spectral_summary_from_power's k / (power.size() - 1) normalization is
  // correct as-is.  What padding does change is bin magnitudes (spectral
  // leakage of the implicit rectangular window onto a finer grid), which
  // is the standard, documented trade-off — NOT a frequency-axis bug.
  // tests/fft_test.cpp pins both properties on odd-length inputs.
  std::size_t padded = 1;
  while (padded < xs.size()) padded <<= 1;

  const double mean = tensor::mean(xs);
  fft_buffer.assign(padded, {0.0, 0.0});
  for (std::size_t i = 0; i < xs.size(); ++i) fft_buffer[i] = {xs[i] - mean, 0.0};
  fft_radix2(fft_buffer);

  power.resize(padded / 2 + 1);
  for (std::size_t k = 0; k < power.size(); ++k) {
    power[k] = std::norm(fft_buffer[k]);
  }
}

std::vector<double> power_spectrum(std::span<const double> xs) {
  util::AlignedVec<std::complex<double>> buffer;
  util::AlignedVec<double> power;
  power_spectrum(xs, buffer, power);
  return {power.begin(), power.end()};
}

SpectralSummary spectral_summary(std::span<const double> xs) {
  return spectral_summary_from_power(power_spectrum(xs));
}

SpectralSummary spectral_summary_from_power(std::span<const double> power) {
  // The weighted sums run through the fixed-lane feature kernels (power is
  // finite and non-negative by construction), with the per-element
  // normalizations folded into one final divide each; the entropy pass
  // stays a scalar loop — its per-bin std::log calls must stay on the
  // scalar libm path so SIMD and no-SIMD builds agree bit-for-bit.
  SpectralSummary summary;
  if (power.size() < 2) return summary;

  const double total = kernels::lane_sum(power);
  summary.total_power = total;
  if (total <= 0.0) return summary;

  const double bins = static_cast<double>(power.size() - 1);
  const double inv_bins = 1.0 / bins;
  const double centroid = kernels::freq_weighted_sum(power, inv_bins) / total;
  summary.centroid = centroid;
  summary.spread =
      std::sqrt(kernels::freq_spread_sum(power, inv_bins, centroid) / total);

  std::size_t peak_bin = 0;
  double entropy = 0.0;
  for (std::size_t k = 0; k < power.size(); ++k) {
    if (power[k] > power[peak_bin]) peak_bin = k;
    const double p = power[k] / total;
    if (p > 0.0) entropy -= p * std::log(p);
  }
  summary.peak_frequency = static_cast<double>(peak_bin) / bins;
  summary.entropy = entropy;

  // Band powers: the bucket map min(3, floor(k / bins * 4)) is monotone
  // non-decreasing in k, so each band is a contiguous bin range; three
  // binary searches over the index space find the cut points with the
  // exact per-element map, and each band sums through the lane kernel.
  std::size_t cut[5];
  cut[0] = 0;
  cut[4] = power.size();
  for (std::size_t band = 1; band <= 3; ++band) {
    std::size_t lo = cut[band - 1];
    std::size_t hi = power.size();
    while (lo < hi) {  // first k whose bucket >= band
      const std::size_t mid = lo + (hi - lo) / 2;
      const auto bucket = std::min<std::size_t>(
          3, static_cast<std::size_t>(static_cast<double>(mid) / bins * 4.0));
      if (bucket < band) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    cut[band] = lo;
  }
  for (std::size_t band = 0; band < 4; ++band) {
    summary.band_power[band] =
        kernels::lane_sum(power.subspan(cut[band], cut[band + 1] - cut[band])) /
        total;
  }
  return summary;
}

}  // namespace prodigy::features
