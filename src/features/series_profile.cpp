#include "features/series_profile.hpp"

#include "features/kernels.hpp"
#include "util/aligned.hpp"

#include <algorithm>
#include <cmath>

namespace prodigy::features {

SeriesProfile compute_series_profile(std::span<const double> xs,
                                     FeatureScratch& scratch) {
  SeriesProfile p;
  p.xs = xs;
  p.n = xs.size();
  const std::size_t n = p.n;

  // Pass 1: sum and energy through the lane kernel (the incremental engine
  // routes through the same kernel, which is what keeps the two paths
  // bit-exact against each other), then extrema with locations.
  {
    const auto se = kernels::sum_energy(xs);
    p.sum = se.sum;
    p.abs_energy = se.energy;
  }
  if (n > 0) {
    p.mean = p.sum / static_cast<double>(n);
    for (std::size_t i = 1; i < n; ++i) {
      if (xs[i] > xs[p.first_max]) p.first_max = i;
      if (xs[i] < xs[p.first_min]) p.first_min = i;
      // The "last" updates are negated comparisons on purpose: for finite
      // data they mean >= / <= (latest tie wins), but when either side is
      // NaN they still fire, matching the standalone extractors' tie rule
      // `!better(xs[last], xs[i])` bit for bit on NaN-bearing input.
      if (!(xs[p.last_max] > xs[i])) p.last_max = i;
      if (!(xs[p.last_min] < xs[i])) p.last_min = i;
    }
    p.min = xs[p.first_min];
    p.max = xs[p.first_max];
  }

  // Pass 2 (needs the mean): variance and the mean-relative run statistics.
  if (n >= 2) {
    p.variance = kernels::centered_sq_sum(xs, p.mean) / static_cast<double>(n);
  }
  p.stddev = std::sqrt(p.variance);
  {
    const auto rs = kernels::run_stats(xs, p.mean);
    p.count_above = rs.count_above;
    p.count_below = rs.count_below;
    p.longest_above = rs.longest_above;
    p.longest_below = rs.longest_below;
    p.crossings = rs.crossings;
  }

  // Pass 3: successive differences.
  p.abs_change_sum = kernels::abs_change_sum(xs);

  // One sort (order statistics), one FFT (spectral family), one fit (trend).
  // NaNs are excluded before sorting: std::sort on NaN violates strict weak
  // ordering (UB), and historically they sorted to the tail where the upper
  // quantiles read them.  Consumers see nan_count > 0 and propagate NaN.
  scratch.sorted.clear();
  scratch.sorted.reserve(xs.size());
  for (double x : xs) {
    if (x != x) {
      ++p.nan_count;
    } else {
      scratch.sorted.push_back(x);
    }
  }
  std::sort(scratch.sorted.begin(), scratch.sorted.end());
  p.sorted = scratch.sorted;

  power_spectrum(xs, scratch.fft, scratch.power);
  util::debug_assert_aligned(scratch.sorted.data());
  util::debug_assert_aligned(scratch.fft.data());
  util::debug_assert_aligned(scratch.power.data());
  p.power = scratch.power;
  p.spectral = spectral_summary_from_power(scratch.power);

  p.trend = linear_trend(xs);
  return p;
}

}  // namespace prodigy::features
