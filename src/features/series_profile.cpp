#include "features/series_profile.hpp"

#include <algorithm>
#include <cmath>

namespace prodigy::features {

SeriesProfile compute_series_profile(std::span<const double> xs,
                                     FeatureScratch& scratch) {
  SeriesProfile p;
  p.xs = xs;
  p.n = xs.size();
  const std::size_t n = p.n;

  // Pass 1: sum, energy, extrema with locations.  Each accumulator advances
  // in index order, matching its standalone counterpart exactly.
  for (double x : xs) {
    p.sum += x;
    p.abs_energy += x * x;
  }
  if (n > 0) {
    p.mean = p.sum / static_cast<double>(n);
    for (std::size_t i = 1; i < n; ++i) {
      if (xs[i] > xs[p.first_max]) p.first_max = i;
      if (xs[i] < xs[p.first_min]) p.first_min = i;
      // The "last" updates are negated comparisons on purpose: for finite
      // data they mean >= / <= (latest tie wins), but when either side is
      // NaN they still fire, matching the standalone extractors' tie rule
      // `!better(xs[last], xs[i])` bit for bit on NaN-bearing input.
      if (!(xs[p.last_max] > xs[i])) p.last_max = i;
      if (!(xs[p.last_min] < xs[i])) p.last_min = i;
    }
    p.min = xs[p.first_min];
    p.max = xs[p.first_max];
  }

  // Pass 2 (needs the mean): variance and the mean-relative run statistics.
  if (n >= 2) {
    double acc = 0.0;
    for (double x : xs) {
      const double d = x - p.mean;
      acc += d * d;
    }
    p.variance = acc / static_cast<double>(n);
  }
  p.stddev = std::sqrt(p.variance);
  {
    std::size_t run_above = 0, run_below = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = xs[i];
      if (x > p.mean) {
        ++p.count_above;
        ++run_above;
        p.longest_above = std::max(p.longest_above, run_above);
      } else {
        run_above = 0;
      }
      if (x < p.mean) {
        ++p.count_below;
        ++run_below;
        p.longest_below = std::max(p.longest_below, run_below);
      } else {
        run_below = 0;
      }
      if (i > 0 && ((xs[i - 1] > p.mean) != (x > p.mean))) ++p.crossings;
    }
  }

  // Pass 3: successive differences.
  if (n >= 2) {
    for (std::size_t i = 1; i < n; ++i) {
      p.abs_change_sum += std::abs(xs[i] - xs[i - 1]);
    }
  }

  // One sort (order statistics), one FFT (spectral family), one fit (trend).
  // NaNs are excluded before sorting: std::sort on NaN violates strict weak
  // ordering (UB), and historically they sorted to the tail where the upper
  // quantiles read them.  Consumers see nan_count > 0 and propagate NaN.
  scratch.sorted.clear();
  scratch.sorted.reserve(xs.size());
  for (double x : xs) {
    if (x != x) {
      ++p.nan_count;
    } else {
      scratch.sorted.push_back(x);
    }
  }
  std::sort(scratch.sorted.begin(), scratch.sorted.end());
  p.sorted = scratch.sorted;

  power_spectrum(xs, scratch.fft, scratch.power);
  p.power = scratch.power;
  p.spectral = spectral_summary_from_power(scratch.power);

  p.trend = linear_trend(xs);
  return p;
}

}  // namespace prodigy::features
