// Feature-extraction inner-loop kernels.  See kernels.hpp for the
// determinism contract; this TU is compiled with -ffp-contract=off plus its
// own -march (PRODIGY_FEATURE_ARCH) and -fopenmp-simd, so the vector hints
// below widen without changing any rounding.
#include "features/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

// Same escape hatch as tensor/kernels.cpp: under PRODIGY_NO_SIMD every hint
// is a no-op and the lane loops compile as plain scalar code — evaluating
// the identical arithmetic DAG, so numerics do not change.
#if defined(PRODIGY_NO_SIMD)
#define PRODIGY_SIMD
#define PRODIGY_SIMD_REDUCE(...)
#else
#define PRODIGY_SIMD _Pragma("omp simd")
#define PRODIGY_PRAGMA_STR(x) #x
#define PRODIGY_SIMD_REDUCE(...) \
  _Pragma(PRODIGY_PRAGMA_STR(omp simd reduction(+ : __VA_ARGS__)))
#endif

namespace prodigy::features::kernels {

namespace {

bool g_force_scalar = false;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void force_scalar(bool on) noexcept { g_force_scalar = on; }
bool scalar_forced() noexcept { return g_force_scalar; }

// ---------------------------------------------------------------------------
// Lane-structured floating-point reductions.
//
// Element i always lands in lane i % kSumLanes (the tail loop starts at a
// multiple of kSumLanes, so `i - tail_start` preserves that mapping), and
// lanes fold in ascending lane order.  The scalar twins repeat the loops
// without the vector hint: same tree, same bits.

SumEnergy sum_energy_scalar(std::span<const double> xs) noexcept {
  double sum[kSumLanes] = {}, energy[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double x = xs[i + l];
      sum[l] += x;
      energy[l] += x * x;
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    const double x = xs[i];
    sum[i - tail] += x;
    energy[i - tail] += x * x;
  }
  SumEnergy r;
  for (std::size_t l = 0; l < kSumLanes; ++l) {
    r.sum += sum[l];
    r.energy += energy[l];
  }
  return r;
}

SumEnergy sum_energy(std::span<const double> xs) noexcept {
  if (g_force_scalar) return sum_energy_scalar(xs);
  double sum[kSumLanes] = {}, energy[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double x = xs[i + l];
      sum[l] += x;
      energy[l] += x * x;
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    const double x = xs[i];
    sum[i - tail] += x;
    energy[i - tail] += x * x;
  }
  SumEnergy r;
  for (std::size_t l = 0; l < kSumLanes; ++l) {
    r.sum += sum[l];
    r.energy += energy[l];
  }
  return r;
}

double lane_sum_scalar(std::span<const double> xs) noexcept {
  double lanes[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) lanes[l] += xs[i + l];
  }
  for (std::size_t i = tail; i < n; ++i) lanes[i - tail] += xs[i];
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double lane_sum(std::span<const double> xs) noexcept {
  if (g_force_scalar) return lane_sum_scalar(xs);
  double lanes[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) lanes[l] += xs[i + l];
  }
  for (std::size_t i = tail; i < n; ++i) lanes[i - tail] += xs[i];
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double freq_weighted_sum_scalar(std::span<const double> xs,
                                double scale) noexcept {
  double lanes[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      lanes[l] += (static_cast<double>(i + l) * scale) * xs[i + l];
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    lanes[i - tail] += (static_cast<double>(i) * scale) * xs[i];
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double freq_weighted_sum(std::span<const double> xs, double scale) noexcept {
  if (g_force_scalar) return freq_weighted_sum_scalar(xs, scale);
  double lanes[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      lanes[l] += (static_cast<double>(i + l) * scale) * xs[i + l];
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    lanes[i - tail] += (static_cast<double>(i) * scale) * xs[i];
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double freq_spread_sum_scalar(std::span<const double> xs, double scale,
                              double center) noexcept {
  double lanes[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double d = static_cast<double>(i + l) * scale - center;
      lanes[l] += d * d * xs[i + l];
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    const double d = static_cast<double>(i) * scale - center;
    lanes[i - tail] += d * d * xs[i];
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double freq_spread_sum(std::span<const double> xs, double scale,
                       double center) noexcept {
  if (g_force_scalar) return freq_spread_sum_scalar(xs, scale, center);
  double lanes[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double d = static_cast<double>(i + l) * scale - center;
      lanes[l] += d * d * xs[i + l];
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    const double d = static_cast<double>(i) * scale - center;
    lanes[i - tail] += d * d * xs[i];
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double centered_sq_sum_scalar(std::span<const double> xs,
                              double mean) noexcept {
  double lanes[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double d = xs[i + l] - mean;
      lanes[l] += d * d;
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    const double d = xs[i] - mean;
    lanes[i - tail] += d * d;
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double centered_sq_sum(std::span<const double> xs, double mean) noexcept {
  if (g_force_scalar) return centered_sq_sum_scalar(xs, mean);
  double lanes[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double d = xs[i + l] - mean;
      lanes[l] += d * d;
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    const double d = xs[i] - mean;
    lanes[i - tail] += d * d;
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

// Successive-difference reductions index the m = n - 1 adjacent pairs;
// pair j covers (xs[j], xs[j + 1]) and lands in lane j % kSumLanes.

double abs_change_sum_scalar(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  double lanes[kSumLanes] = {};
  const std::size_t m = xs.size() - 1;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t j = 0; j < tail; j += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      lanes[l] += std::abs(xs[j + l + 1] - xs[j + l]);
    }
  }
  for (std::size_t j = tail; j < m; ++j) {
    lanes[j - tail] += std::abs(xs[j + 1] - xs[j]);
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double abs_change_sum(std::span<const double> xs) noexcept {
  if (g_force_scalar) return abs_change_sum_scalar(xs);
  if (xs.size() < 2) return 0.0;
  double lanes[kSumLanes] = {};
  const std::size_t m = xs.size() - 1;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t j = 0; j < tail; j += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      lanes[l] += std::abs(xs[j + l + 1] - xs[j + l]);
    }
  }
  for (std::size_t j = tail; j < m; ++j) {
    lanes[j - tail] += std::abs(xs[j + 1] - xs[j]);
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double sq_change_sum_scalar(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  double lanes[kSumLanes] = {};
  const std::size_t m = xs.size() - 1;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t j = 0; j < tail; j += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double d = xs[j + l + 1] - xs[j + l];
      lanes[l] += d * d;
    }
  }
  for (std::size_t j = tail; j < m; ++j) {
    const double d = xs[j + 1] - xs[j];
    lanes[j - tail] += d * d;
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double sq_change_sum(std::span<const double> xs) noexcept {
  if (g_force_scalar) return sq_change_sum_scalar(xs);
  if (xs.size() < 2) return 0.0;
  double lanes[kSumLanes] = {};
  const std::size_t m = xs.size() - 1;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t j = 0; j < tail; j += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double d = xs[j + l + 1] - xs[j + l];
      lanes[l] += d * d;
    }
  }
  for (std::size_t j = tail; j < m; ++j) {
    const double d = xs[j + 1] - xs[j];
    lanes[j - tail] += d * d;
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double sq_zchange_sum_scalar(std::span<const double> xs, double mean,
                             double stddev) noexcept {
  if (xs.size() < 2) return 0.0;
  double lanes[kSumLanes] = {};
  const std::size_t m = xs.size() - 1;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t j = 0; j < tail; j += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double d =
          (xs[j + l + 1] - mean) / stddev - (xs[j + l] - mean) / stddev;
      lanes[l] += d * d;
    }
  }
  for (std::size_t j = tail; j < m; ++j) {
    const double d = (xs[j + 1] - mean) / stddev - (xs[j] - mean) / stddev;
    lanes[j - tail] += d * d;
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double sq_zchange_sum(std::span<const double> xs, double mean,
                      double stddev) noexcept {
  if (g_force_scalar) return sq_zchange_sum_scalar(xs, mean, stddev);
  if (xs.size() < 2) return 0.0;
  double lanes[kSumLanes] = {};
  const std::size_t m = xs.size() - 1;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t j = 0; j < tail; j += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double d =
          (xs[j + l + 1] - mean) / stddev - (xs[j + l] - mean) / stddev;
      lanes[l] += d * d;
    }
  }
  for (std::size_t j = tail; j < m; ++j) {
    const double d = (xs[j + 1] - mean) / stddev - (xs[j] - mean) / stddev;
    lanes[j - tail] += d * d;
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

// Central second differences index the m = n - 2 interior points; term j
// covers (xs[j], xs[j + 1], xs[j + 2]).

double second_derivative_sum_scalar(std::span<const double> xs) noexcept {
  if (xs.size() < 3) return 0.0;
  double lanes[kSumLanes] = {};
  const std::size_t m = xs.size() - 2;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t j = 0; j < tail; j += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      lanes[l] +=
          0.5 * (xs[j + l + 2] - 2.0 * xs[j + l + 1] + xs[j + l]);
    }
  }
  for (std::size_t j = tail; j < m; ++j) {
    lanes[j - tail] += 0.5 * (xs[j + 2] - 2.0 * xs[j + 1] + xs[j]);
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double second_derivative_sum(std::span<const double> xs) noexcept {
  if (g_force_scalar) return second_derivative_sum_scalar(xs);
  if (xs.size() < 3) return 0.0;
  double lanes[kSumLanes] = {};
  const std::size_t m = xs.size() - 2;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t j = 0; j < tail; j += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      lanes[l] +=
          0.5 * (xs[j + l + 2] - 2.0 * xs[j + l + 1] + xs[j + l]);
    }
  }
  for (std::size_t j = tail; j < m; ++j) {
    lanes[j - tail] += 0.5 * (xs[j + 2] - 2.0 * xs[j + 1] + xs[j]);
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

ZMoments zmoment_sums_scalar(std::span<const double> xs, double mean,
                             double stddev) noexcept {
  double z3[kSumLanes] = {}, z4[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double z = (xs[i + l] - mean) / stddev;
      const double zz = z * z;
      z3[l] += zz * z;
      z4[l] += zz * zz;
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    const double z = (xs[i] - mean) / stddev;
    const double zz = z * z;
    z3[i - tail] += zz * z;
    z4[i - tail] += zz * zz;
  }
  ZMoments r;
  for (std::size_t l = 0; l < kSumLanes; ++l) {
    r.z3 += z3[l];
    r.z4 += z4[l];
  }
  return r;
}

ZMoments zmoment_sums(std::span<const double> xs, double mean,
                      double stddev) noexcept {
  if (g_force_scalar) return zmoment_sums_scalar(xs, mean, stddev);
  double z3[kSumLanes] = {}, z4[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double z = (xs[i + l] - mean) / stddev;
      const double zz = z * z;
      z3[l] += zz * z;
      z4[l] += zz * zz;
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    const double z = (xs[i] - mean) / stddev;
    const double zz = z * z;
    z3[i - tail] += zz * z;
    z4[i - tail] += zz * zz;
  }
  ZMoments r;
  for (std::size_t l = 0; l < kSumLanes; ++l) {
    r.z3 += z3[l];
    r.z4 += z4[l];
  }
  return r;
}

TrendSums trend_sums_scalar(std::span<const double> xs, double t_mean,
                            double x_mean) noexcept {
  double stx[kSumLanes] = {}, stt[kSumLanes] = {}, sxx[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double dt = static_cast<double>(i + l) - t_mean;
      const double dx = xs[i + l] - x_mean;
      stx[l] += dt * dx;
      stt[l] += dt * dt;
      sxx[l] += dx * dx;
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    const double dt = static_cast<double>(i) - t_mean;
    const double dx = xs[i] - x_mean;
    stx[i - tail] += dt * dx;
    stt[i - tail] += dt * dt;
    sxx[i - tail] += dx * dx;
  }
  TrendSums r;
  for (std::size_t l = 0; l < kSumLanes; ++l) {
    r.stx += stx[l];
    r.stt += stt[l];
    r.sxx += sxx[l];
  }
  return r;
}

TrendSums trend_sums(std::span<const double> xs, double t_mean,
                     double x_mean) noexcept {
  if (g_force_scalar) return trend_sums_scalar(xs, t_mean, x_mean);
  double stx[kSumLanes] = {}, stt[kSumLanes] = {}, sxx[kSumLanes] = {};
  const std::size_t n = xs.size();
  const std::size_t tail = n - n % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double dt = static_cast<double>(i + l) - t_mean;
      const double dx = xs[i + l] - x_mean;
      stx[l] += dt * dx;
      stt[l] += dt * dt;
      sxx[l] += dx * dx;
    }
  }
  for (std::size_t i = tail; i < n; ++i) {
    const double dt = static_cast<double>(i) - t_mean;
    const double dx = xs[i] - x_mean;
    stx[i - tail] += dt * dx;
    stt[i - tail] += dt * dt;
    sxx[i - tail] += dx * dx;
  }
  TrendSums r;
  for (std::size_t l = 0; l < kSumLanes; ++l) {
    r.stx += stx[l];
    r.stt += stt[l];
    r.sxx += sxx[l];
  }
  return r;
}

double centered_lag_mac_scalar(std::span<const double> xs, double mean,
                               std::size_t lag) noexcept {
  if (xs.size() <= lag) return 0.0;
  double lanes[kSumLanes] = {};
  const std::size_t m = xs.size() - lag;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      lanes[l] += (xs[i + l] - mean) * (xs[i + l + lag] - mean);
    }
  }
  for (std::size_t i = tail; i < m; ++i) {
    lanes[i - tail] += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

double centered_lag_mac(std::span<const double> xs, double mean,
                        std::size_t lag) noexcept {
  if (g_force_scalar) return centered_lag_mac_scalar(xs, mean, lag);
  if (xs.size() <= lag) return 0.0;
  double lanes[kSumLanes] = {};
  const std::size_t m = xs.size() - lag;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      lanes[l] += (xs[i + l] - mean) * (xs[i + l + lag] - mean);
    }
  }
  for (std::size_t i = tail; i < m; ++i) {
    lanes[i - tail] += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kSumLanes; ++l) total += lanes[l];
  return total;
}

C3TrSums c3_tr_sums_scalar(std::span<const double> xs,
                           std::size_t lag) noexcept {
  C3TrSums r;
  if (lag == 0 || xs.size() < 2 * lag + 1) return r;
  double c3[kSumLanes] = {}, tr[kSumLanes] = {};
  const std::size_t m = xs.size() - 2 * lag;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double a = xs[i + l + 2 * lag];
      const double b = xs[i + l + lag];
      const double c = xs[i + l];
      c3[l] += a * b * c;
      tr[l] += a * a * b - b * c * c;
    }
  }
  for (std::size_t i = tail; i < m; ++i) {
    const double a = xs[i + 2 * lag];
    const double b = xs[i + lag];
    const double c = xs[i];
    c3[i - tail] += a * b * c;
    tr[i - tail] += a * a * b - b * c * c;
  }
  for (std::size_t l = 0; l < kSumLanes; ++l) {
    r.c3 += c3[l];
    r.tr += tr[l];
  }
  return r;
}

C3TrSums c3_tr_sums(std::span<const double> xs, std::size_t lag) noexcept {
  if (g_force_scalar) return c3_tr_sums_scalar(xs, lag);
  C3TrSums r;
  if (lag == 0 || xs.size() < 2 * lag + 1) return r;
  double c3[kSumLanes] = {}, tr[kSumLanes] = {};
  const std::size_t m = xs.size() - 2 * lag;
  const std::size_t tail = m - m % kSumLanes;
  for (std::size_t i = 0; i < tail; i += kSumLanes) {
    PRODIGY_SIMD
    for (std::size_t l = 0; l < kSumLanes; ++l) {
      const double a = xs[i + l + 2 * lag];
      const double b = xs[i + l + lag];
      const double c = xs[i + l];
      c3[l] += a * b * c;
      tr[l] += a * a * b - b * c * c;
    }
  }
  for (std::size_t i = tail; i < m; ++i) {
    const double a = xs[i + 2 * lag];
    const double b = xs[i + lag];
    const double c = xs[i];
    c3[i - tail] += a * b * c;
    tr[i - tail] += a * a * b - b * c * c;
  }
  for (std::size_t l = 0; l < kSumLanes; ++l) {
    r.c3 += c3[l];
    r.tr += tr[l];
  }
  return r;
}

// ---------------------------------------------------------------------------
// Integer window statistics.

RunStats run_stats_scalar(std::span<const double> xs, double mean) noexcept {
  // Verbatim historical pass (SeriesProfile pass 2 / the incremental
  // per-emission loop): the parity oracle for the flag-based vector path.
  RunStats r;
  std::size_t run_above = 0, run_below = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i];
    if (x > mean) {
      ++r.count_above;
      ++run_above;
      r.longest_above = std::max(r.longest_above, run_above);
    } else {
      run_above = 0;
    }
    if (x < mean) {
      ++r.count_below;
      ++run_below;
      r.longest_below = std::max(r.longest_below, run_below);
    } else {
      run_below = 0;
    }
    if (i > 0 && ((xs[i - 1] > mean) != (x > mean))) ++r.crossings;
  }
  return r;
}

RunStats run_stats(std::span<const double> xs, double mean) {
  if (g_force_scalar) return run_stats_scalar(xs, mean);
  const std::size_t n = xs.size();
  if (n == 0) return {};
  // One vector pass classifies every element into two flag bits (NaN sets
  // neither, matching the historical x > mean / x < mean branch pair), then
  // cheap byte scans tally the counts; the run/crossing scans are
  // branchless over the flag bytes.  All outputs are integers, so this is
  // bit-exact against the scalar oracle by construction.
  thread_local std::vector<std::uint8_t> flags;
  flags.resize(n);
  std::uint8_t* fl = flags.data();
  PRODIGY_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    const double x = xs[i];
    fl[i] = static_cast<std::uint8_t>((x > mean ? 1u : 0u) |
                                      (x < mean ? 2u : 0u));
  }
  RunStats r;
  std::size_t above = 0, below = 0, crossings = 0;
  PRODIGY_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    above += fl[i] & 1u;
    below += (fl[i] >> 1) & 1u;
  }
  PRODIGY_SIMD
  for (std::size_t i = 1; i < n; ++i) {
    crossings += (fl[i - 1] ^ fl[i]) & 1u;
  }
  r.count_above = above;
  r.count_below = below;
  r.crossings = crossings;
  std::size_t run_above = 0, run_below = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a = fl[i] & 1u;
    const std::size_t b = (fl[i] >> 1) & 1u;
    run_above = (run_above + 1) & (0 - a);  // a == 0 resets the run
    run_below = (run_below + 1) & (0 - b);
    r.longest_above = std::max(r.longest_above, run_above);
    r.longest_below = std::max(r.longest_below, run_below);
  }
  return r;
}

std::size_t count_beyond_scalar(std::span<const double> xs, double mean,
                                double threshold) noexcept {
  std::size_t count = 0;
  for (double x : xs) count += std::abs(x - mean) > threshold ? 1 : 0;
  return count;
}

std::size_t count_beyond(std::span<const double> xs, double mean,
                         double threshold) noexcept {
  if (g_force_scalar) return count_beyond_scalar(xs, mean, threshold);
  std::size_t count = 0;
  const std::size_t n = xs.size();
  PRODIGY_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    count += std::abs(xs[i] - mean) > threshold ? 1 : 0;
  }
  return count;
}

std::size_t count_flag_bits_scalar(std::span<const std::uint8_t> flags,
                                   std::uint8_t bit) noexcept {
  std::size_t count = 0;
  for (const std::uint8_t f : flags) count += (f & bit) != 0 ? 1 : 0;
  return count;
}

std::size_t count_flag_bits(std::span<const std::uint8_t> flags,
                            std::uint8_t bit) noexcept {
  if (g_force_scalar) return count_flag_bits_scalar(flags, bit);
  std::size_t count = 0;
  const std::size_t n = flags.size();
  PRODIGY_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    count += (flags[i] & bit) != 0 ? 1 : 0;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Approximate entropy's symmetric pair sweep.

void apen_match_counts_scalar(std::span<const double> series, std::size_t m,
                              double r, std::span<std::uint32_t> matches_lo,
                              std::span<std::uint32_t> matches_hi,
                              ApEnScratch& scratch) {
  // Verbatim PR-6 sweep: sorted dim-1 prefilter, contiguous run scan,
  // shared prefix comparison for dims m and m+1.  The parity oracle.
  const std::size_t count_lo = matches_lo.size();
  const std::size_t count_hi = matches_hi.size();
  if (m == 0) {
    for (std::size_t i = 0; i < count_lo; ++i) {
      for (std::size_t j = i + 1; j < count_lo; ++j) {
        ++matches_lo[i];
        ++matches_lo[j];
        if (j < count_hi && !(std::abs(series[i] - series[j]) > r)) {
          ++matches_hi[i];
          ++matches_hi[j];
        }
      }
    }
    return;
  }
  auto& order = scratch.order;
  order.resize(count_lo);
  for (std::size_t i = 0; i < count_lo; ++i) {
    order[i] = {series[i], static_cast<std::uint32_t>(i)};
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t a = 0; a < count_lo; ++a) {
    const std::size_t i = order[a].second;
    const double vi = order[a].first;
    for (std::size_t b = a + 1; b < count_lo; ++b) {
      if (order[b].first - vi > r) break;  // sorted: later b is farther
      const std::size_t j = order[b].second;
      bool match = true;
      for (std::size_t k = 1; k < m && match; ++k) {
        if (std::abs(series[i + k] - series[j + k]) > r) match = false;
      }
      if (!match) continue;
      ++matches_lo[i];
      ++matches_lo[j];
      if (std::max(i, j) < count_hi &&
          !(std::abs(series[i + m] - series[j + m]) > r)) {
        ++matches_hi[i];
        ++matches_hi[j];
      }
    }
  }
}

void apen_match_counts(std::span<const double> series, std::size_t m,
                       double r, std::span<std::uint32_t> matches_lo,
                       std::span<std::uint32_t> matches_hi,
                       ApEnScratch& scratch) {
  if (g_force_scalar || m == 0) {
    apen_match_counts_scalar(series, m, r, matches_lo, matches_hi, scratch);
    return;
  }
  const std::size_t count_lo = matches_lo.size();
  const std::size_t count_hi = matches_hi.size();

  // Same sorted dim-1 prefilter as the scalar sweep, but the run scan is
  // register-tiled: the sort order's window-start indices and their k-th
  // components are packed into lane-contiguous arrays once per call, so the
  // inner tile is all unit-stride loads.  level k of `next` holds
  // series[idx + k]; the extension level m stores +inf for the one
  // window-start index >= count_hi, which fails !(|a - b| > r) against any
  // finite anchor — the max(i, j) < count_hi guard folded into data.  (The
  // anchor side uses the same sentinel; both operands can never be the
  // sentinel at once because only one window index lacks an extension.)
  auto& order = scratch.order;
  order.resize(count_lo);
  for (std::size_t i = 0; i < count_lo; ++i) {
    order[i] = {series[i], static_cast<std::uint32_t>(i)};
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  scratch.vals.resize(count_lo);
  scratch.idxs.resize(count_lo);
  scratch.next.resize(m * count_lo);
  double* vals = scratch.vals.data();
  std::uint32_t* idxs = scratch.idxs.data();
  double* next = scratch.next.data();
  for (std::size_t b = 0; b < count_lo; ++b) {
    vals[b] = order[b].first;
    idxs[b] = order[b].second;
  }
  for (std::size_t k = 1; k < m; ++k) {
    double* level = next + (k - 1) * count_lo;
    for (std::size_t b = 0; b < count_lo; ++b) level[b] = series[idxs[b] + k];
  }
  {
    double* ext = next + (m - 1) * count_lo;
    for (std::size_t b = 0; b < count_lo; ++b) {
      ext[b] = idxs[b] < count_hi ? series[idxs[b] + m] : kInf;
    }
  }

  // Diagonal pair sweep.  All candidate pairs live in a band of the sorted
  // order: pair (a, a + d) is plausible iff vals[a + d] - vals[a] <= r.
  // Iterating the offset d in the outer loop turns every inner loop into a
  // full-length unit-stride pass over the lane-contiguous arrays — no
  // per-pair scatters and no short-trip vector loops (per-anchor candidate
  // runs are only ~W * P(|x - y| <= r) elements, far too short to amortize
  // vector prologues).  vals is sorted and finite (non-finite series
  // short-circuit before the sweep, see approximate_entropy), so if no
  // pair passes the dim-1 test at offset d none can pass at d + 1:
  // vals[a + d + 1] - vals[a] >= vals[a + d] - vals[a]; the d loop stops at
  // the longest dim-1 run.  Matches accumulate into position-indexed
  // counters (lo_by_pos / hi_by_pos) — both sides of each symmetric pair
  // are shifted unit-stride array adds — and one O(count_lo) fold at the
  // end routes the counts through idxs to the caller's window-indexed
  // arrays.  Counts are integers, so accumulation order is irrelevant and
  // the result is bit-identical to the scalar oracle.
  scratch.mask.resize(count_lo);
  scratch.maskh.resize(count_lo);
  scratch.lo_by_pos.assign(count_lo, 0);
  scratch.hi_by_pos.assign(count_lo, 0);
  std::uint32_t* mask = scratch.mask.data();
  std::uint32_t* maskh = scratch.maskh.data();
  std::uint32_t* lo_by_pos = scratch.lo_by_pos.data();
  std::uint32_t* hi_by_pos = scratch.hi_by_pos.data();
  const double* ext = next + (m - 1) * count_lo;
  // Monotone band: validity of pair (a, a + d) at the dim-1 level only
  // shrinks as d grows (vals[a + d + 1] >= vals[a + d]), so the earliest
  // and latest dim-1-valid positions bound the scan for every later
  // offset.  The two shrink scans use the scalar sweep's own predicate,
  // and positions outside the band are exactly those whose dim-1 test
  // fails — the scalar sweep's break skips them too.  The band emptying
  // doubles as the termination test, replacing a per-diagonal reduction.
  std::size_t amin = 0;
  std::size_t amax = count_lo >= 2 ? count_lo - 2 : 0;
  for (std::size_t d = 1; d < count_lo; ++d) {
    if (amax > count_lo - 1 - d) amax = count_lo - 1 - d;
    while (amin <= amax && vals[amin + d] - vals[amin] > r) ++amin;
    if (amin > amax) break;
    while (vals[amax + d] - vals[amax] > r) --amax;  // stops at amin: valid
    const std::size_t a0 = amin;
    const std::size_t nd = amax + 1 - amin;
    if (m == 2) {
      // The pipeline's only shape (ApEn runs at m = 2): one fused pass
      // computes dim-1, the single refinement level, the extension level
      // (+inf sentinel: fails !(|x - y| > r) against any finite operand,
      // and both operands can never be the sentinel at once — only one
      // window index lacks an extension), and the earlier-side counter
      // adds; a second shifted pass adds the later side of each pair.
      const double* l1 = next;
      PRODIGY_SIMD
      for (std::size_t a = a0; a < a0 + nd; ++a) {
        const std::uint32_t d1 =
            static_cast<std::uint32_t>(!(vals[a + d] - vals[a] > r));
        const std::uint32_t mm =
            d1 & static_cast<std::uint32_t>(!(std::abs(l1[a] - l1[a + d]) > r));
        const std::uint32_t mh =
            mm &
            static_cast<std::uint32_t>(!(std::abs(ext[a] - ext[a + d]) > r));
        mask[a] = mm;
        maskh[a] = mh;
        lo_by_pos[a] += mm;
        hi_by_pos[a] += mh;
      }
    } else {
      if (m >= 2) {
        // First refinement level folds into the dim-1 pass.
        const double* l1 = next;
        PRODIGY_SIMD
        for (std::size_t a = a0; a < a0 + nd; ++a) {
          const std::uint32_t d1 =
              static_cast<std::uint32_t>(!(vals[a + d] - vals[a] > r));
          mask[a] = d1 & static_cast<std::uint32_t>(
                             !(std::abs(l1[a] - l1[a + d]) > r));
        }
      } else {
        // m == 1: dim-m is the dim-1 prefilter itself.
        PRODIGY_SIMD
        for (std::size_t a = a0; a < a0 + nd; ++a) {
          mask[a] =
              static_cast<std::uint32_t>(!(vals[a + d] - vals[a] > r));
        }
      }
      for (std::size_t k = 2; k < m; ++k) {
        const double* lk = next + (k - 1) * count_lo;
        PRODIGY_SIMD
        for (std::size_t a = a0; a < a0 + nd; ++a) {
          mask[a] &=
              static_cast<std::uint32_t>(!(std::abs(lk[a] - lk[a + d]) > r));
        }
      }
      // Extension level (+inf sentinel, see above) and earlier-side adds.
      PRODIGY_SIMD
      for (std::size_t a = a0; a < a0 + nd; ++a) {
        const std::uint32_t mh =
            mask[a] &
            static_cast<std::uint32_t>(!(std::abs(ext[a] - ext[a + d]) > r));
        maskh[a] = mh;
        lo_by_pos[a] += mask[a];
        hi_by_pos[a] += mh;
      }
    }
    // Later side of each symmetric pair.
    PRODIGY_SIMD
    for (std::size_t a = a0; a < a0 + nd; ++a) {
      lo_by_pos[a + d] += mask[a];
      hi_by_pos[a + d] += maskh[a];
    }
  }
  for (std::size_t b = 0; b < count_lo; ++b) {
    matches_lo[idxs[b]] += lo_by_pos[b];
    if (idxs[b] < count_hi) matches_hi[idxs[b]] += hi_by_pos[b];
  }
}

// ---------------------------------------------------------------------------
// Sliding-DFT apply.

void sdft_apply_scalar(double* bin_re, double* bin_im, std::size_t nbins,
                       const double* tw_re, const double* tw_im,
                       std::uint32_t w, std::size_t u0,
                       std::span<const double> deltas) noexcept {
  // The historical strength-reduced loop: idx = (k * u) % w advanced by u
  // per bin.  The planar adds are componentwise — exactly what
  // bins[k] += d * twiddle[idx] did on std::complex storage.
  for (std::size_t j = 0; j < deltas.size(); ++j) {
    const double d = deltas[j];
    if (d == 0.0) continue;
    const std::size_t u = (u0 + j) % w;
    std::size_t idx = 0;
    for (std::size_t k = 0; k < nbins; ++k) {
      bin_re[k] += d * tw_re[idx];
      bin_im[k] += d * tw_im[idx];
      idx += u;
      if (idx >= w) idx -= w;
    }
  }
}

void sdft_apply(double* bin_re, double* bin_im, std::size_t nbins,
                const double* tw_re, const double* tw_im, std::uint32_t w,
                std::size_t u0, std::span<const double> deltas) noexcept {
  if (g_force_scalar) {
    sdft_apply_scalar(bin_re, bin_im, nbins, tw_re, tw_im, w, u0, deltas);
    return;
  }
  // w is a power of two (the SDFT gate), so (k * u) mod w is the low bits
  // of a 32-bit product — computable independently per bin, which lets the
  // bin loop vectorize with gathered twiddle loads.  Each bin still
  // accumulates its deltas in ascending-j order: bit-identical to the
  // scalar oracle.
  const std::uint32_t mask = w - 1;
  const std::uint32_t n32 = static_cast<std::uint32_t>(nbins);
  for (std::size_t j = 0; j < deltas.size(); ++j) {
    const double d = deltas[j];
    if (d == 0.0) continue;
    const std::uint32_t u = static_cast<std::uint32_t>((u0 + j) % w);
    PRODIGY_SIMD
    for (std::uint32_t k = 0; k < n32; ++k) {
      const std::uint32_t idx = (k * u) & mask;
      bin_re[k] += d * tw_re[idx];
      bin_im[k] += d * tw_im[idx];
    }
  }
}

}  // namespace prodigy::features::kernels
