#include "features/series_preprocess.hpp"

#include <algorithm>
#include <cmath>

namespace prodigy::features {

void linear_interpolate(std::span<double> series) {
  const std::size_t n = series.size();
  std::size_t i = 0;
  std::ptrdiff_t last_finite = -1;
  while (i < n) {
    if (std::isfinite(series[i])) {
      if (last_finite >= 0 && static_cast<std::size_t>(last_finite) + 1 < i) {
        // Interpolate the gap (last_finite, i).
        const double lo = series[static_cast<std::size_t>(last_finite)];
        const double hi = series[i];
        const double span = static_cast<double>(i) - static_cast<double>(last_finite);
        for (std::size_t g = static_cast<std::size_t>(last_finite) + 1; g < i; ++g) {
          const double t = (static_cast<double>(g) - static_cast<double>(last_finite)) / span;
          series[g] = lo + (hi - lo) * t;
        }
      } else if (last_finite < 0 && i > 0) {
        // Leading gap: back-fill with first finite value.
        for (std::size_t g = 0; g < i; ++g) series[g] = series[i];
      }
      last_finite = static_cast<std::ptrdiff_t>(i);
    }
    ++i;
  }
  if (last_finite < 0) {
    std::fill(series.begin(), series.end(), 0.0);
  } else if (static_cast<std::size_t>(last_finite) + 1 < n) {
    // Trailing gap: forward-fill.
    const double value = series[static_cast<std::size_t>(last_finite)];
    for (std::size_t g = static_cast<std::size_t>(last_finite) + 1; g < n; ++g) {
      series[g] = value;
    }
  }
}

void counter_to_rate_inplace(std::span<double> series) {
  if (series.size() < 2) {
    std::fill(series.begin(), series.end(), 0.0);
    return;
  }
  // Walk backwards so each x[t-1] is still the raw value when read.
  for (std::size_t t = series.size() - 1; t >= 1; --t) {
    series[t] = series[t] - series[t - 1];
  }
  series[0] = series[1];  // keep length aligned with the gauges
}

std::vector<double> counter_to_rate(std::span<const double> series) {
  std::vector<double> rates(series.begin(), series.end());
  counter_to_rate_inplace(rates);
  return rates;
}

}  // namespace prodigy::features
