// Scalar time-series characterization functions — the reproduction of the
// TSFRESH feature family used by the paper (§3.1, §4.2.1): descriptive
// statistics plus "advanced" features such as approximate entropy, power
// spectral density aggregates, the variation coefficient, C3 nonlinearity
// statistics and Benford correlation.
//
// All extractors are NaN-free total functions: they return 0.0 (or another
// documented neutral value) on degenerate inputs (empty, constant, too
// short) instead of propagating NaN into the feature matrix.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace prodigy::features {

// --- energy & change ---
double abs_energy(std::span<const double> xs) noexcept;            // sum x^2
double root_mean_square(std::span<const double> xs) noexcept;
double mean_abs_change(std::span<const double> xs) noexcept;
double mean_change(std::span<const double> xs) noexcept;
double absolute_sum_of_changes(std::span<const double> xs) noexcept;
double mean_second_derivative_central(std::span<const double> xs) noexcept;

// --- dispersion ---
/// stddev / |mean|; 0 when the mean is 0.
double variation_coefficient(std::span<const double> xs) noexcept;
/// Moment-reusing variant (the single-argument form delegates here).
double variation_coefficient(double mean, double stddev) noexcept;
double value_range(std::span<const double> xs) noexcept;  // max - min
double interquartile_range(std::span<const double> xs);

// --- shape & location ---
double first_location_of_maximum(std::span<const double> xs) noexcept;
double last_location_of_maximum(std::span<const double> xs) noexcept;
double first_location_of_minimum(std::span<const double> xs) noexcept;
double last_location_of_minimum(std::span<const double> xs) noexcept;

// --- counts & strikes ---
double count_above_mean(std::span<const double> xs) noexcept;   // ratio in [0,1]
double count_below_mean(std::span<const double> xs) noexcept;
double longest_strike_above_mean(std::span<const double> xs) noexcept;  // ratio
double longest_strike_below_mean(std::span<const double> xs) noexcept;
/// Number of mean-crossings divided by (n-1).
double mean_crossing_rate(std::span<const double> xs) noexcept;
/// Count of local maxima strictly greater than `support` neighbours each side,
/// normalized by series length.
double number_peaks(std::span<const double> xs, std::size_t support) noexcept;
/// Fraction of samples farther than r * stddev from the mean.
double ratio_beyond_r_sigma(std::span<const double> xs, double r) noexcept;
/// Moment-reusing variant (the two-argument form delegates here).
double ratio_beyond_r_sigma(std::span<const double> xs, double r, double mean,
                            double stddev) noexcept;

// --- nonlinearity & complexity ---
/// C3 statistic (Schreiber & Schmitz 1997): mean of x[i+2l]*x[i+l]*x[i].
double c3(std::span<const double> xs, std::size_t lag) noexcept;
/// Time-reversal asymmetry statistic at the given lag.
double time_reversal_asymmetry(std::span<const double> xs, std::size_t lag) noexcept;
/// Complexity-invariant distance estimate (CID-CE).
double cid_ce(std::span<const double> xs, bool normalize) noexcept;
/// Moment-reusing variant (the two-argument form delegates here); the
/// moments are only read when `normalize` is true.
double cid_ce(std::span<const double> xs, bool normalize, double mean,
              double stddev) noexcept;
/// Approximate entropy with embedding dimension m and tolerance r_frac * std.
/// Series longer than 256 points are subsampled for O(n^2) cost control.
double approximate_entropy(std::span<const double> xs, std::size_t m, double r_frac);
/// Shannon entropy of a max_bins equal-width histogram.
double binned_entropy(std::span<const double> xs, std::size_t max_bins);
/// Extrema-reusing variant (the two-argument form delegates here).
double binned_entropy(std::span<const double> xs, std::size_t max_bins,
                      double min_value, double max_value);
/// Sorted-input variant: the bin map is monotone, so bin populations come
/// from max_bins binary searches instead of an O(n) scatter pass — counts
/// (and the entropy) are bit-identical to the scan path.  Requires finite
/// ascending values and finite extrema; NaN/inf windows must use the scan.
double binned_entropy_sorted(std::span<const double> sorted,
                             std::size_t max_bins, double min_value,
                             double max_value);

// --- distributional law ---
/// Pearson correlation between the first-digit distribution of xs and the
/// Benford distribution (Hill 1995), as used by TSFRESH.
double benford_correlation(std::span<const double> xs);
/// First significant decimal digit of |x| (1..9), or 0 for zero/non-finite
/// samples (those are excluded from the Benford histogram).
int benford_first_digit(double x) noexcept;
/// Benford correlation from a first-digit histogram (counts[d-1] = samples
/// with first digit d, `counted` their total).  The span overload tallies
/// and delegates here; the incremental engine slides the counts instead.
double benford_correlation_from_counts(
    const std::array<std::uint32_t, 9>& counts, std::size_t counted);

// --- trend ---
struct LinearTrendResult {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
/// Least-squares linear fit of xs against the time index.
LinearTrendResult linear_trend(std::span<const double> xs) noexcept;

}  // namespace prodigy::features
