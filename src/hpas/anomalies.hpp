// HPAS-equivalent synthetic performance anomalies (Ates et al., ICPP'19).
//
// The real HPAS runs a contention process next to the application; what the
// monitoring stack observes is the contention's *metric signature*.  Each
// injector here perturbs the simulated ResourceState the way the
// corresponding HPAS anomaly perturbs a real node, parameterized by the same
// command-line knobs the paper lists in Table 2.
#pragma once

#include "telemetry/resource_state.hpp"
#include "util/rng.hpp"

#include <memory>
#include <string>
#include <vector>

namespace prodigy::hpas {

enum class AnomalyKind {
  None,
  Memleak,    // -s <alloc size> -p <period scale>
  Membw,      // -s <copy block size>
  Cpuoccupy,  // -u <utilization>
  Cachecopy,  // -c <cache level> -m <multiplier>
  Iobw,       // I/O bandwidth contention (runs terminated by admins in the paper)
  Netoccupy,  // network contention (needs >=2 nodes; excluded from paper runs)
};

std::string to_string(AnomalyKind kind);
AnomalyKind anomaly_kind_from_string(const std::string& name);

/// One configured anomaly instance, e.g. {Memleak, "-s 10M -p 1"}.
struct AnomalySpec {
  AnomalyKind kind = AnomalyKind::None;
  /// Primary size/utilization knob, normalized to [0, 1] intensity.
  double intensity = 1.0;
  /// Human-readable configuration string (mirrors Table 2).
  std::string config;

  bool is_anomalous() const noexcept { return kind != AnomalyKind::None; }
};

/// The exact anomaly configurations of Table 2 of the paper.
std::vector<AnomalySpec> table2_configurations();

/// Expected runtime inflation caused by the anomaly (>= 1.0): contention
/// slows the victim, so an anomalous run of the same input deck takes longer
/// (the paper's §1 cites >70-100% execution-time increases; its Empire runs
/// took 10-30% longer).  The dataset builder stretches anomalous run
/// durations by this factor.
double expected_slowdown(const AnomalySpec& spec) noexcept;

/// The healthy (no-anomaly) spec.
AnomalySpec healthy_spec();

/// Stateful per-run injector.  Created once per (run, node); perturb() is
/// called once per simulated second with t_frac = t / duration in [0, 1).
class AnomalyInjector {
 public:
  virtual ~AnomalyInjector() = default;
  virtual void perturb(double t_frac, telemetry::ResourceState& state,
                       util::Rng& rng) = 0;
};

/// Factory.  Returns nullptr for AnomalyKind::None.
std::unique_ptr<AnomalyInjector> make_injector(const AnomalySpec& spec,
                                               util::Rng& rng);

}  // namespace prodigy::hpas
