#include "hpas/anomalies.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prodigy::hpas {

using telemetry::ResourceState;

std::string to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::None: return "none";
    case AnomalyKind::Memleak: return "memleak";
    case AnomalyKind::Membw: return "membw";
    case AnomalyKind::Cpuoccupy: return "cpuoccupy";
    case AnomalyKind::Cachecopy: return "cachecopy";
    case AnomalyKind::Iobw: return "iobw";
    case AnomalyKind::Netoccupy: return "netoccupy";
  }
  return "none";
}

AnomalyKind anomaly_kind_from_string(const std::string& name) {
  if (name == "none") return AnomalyKind::None;
  if (name == "memleak") return AnomalyKind::Memleak;
  if (name == "membw") return AnomalyKind::Membw;
  if (name == "cpuoccupy") return AnomalyKind::Cpuoccupy;
  if (name == "cachecopy") return AnomalyKind::Cachecopy;
  if (name == "iobw") return AnomalyKind::Iobw;
  if (name == "netoccupy") return AnomalyKind::Netoccupy;
  throw std::invalid_argument("unknown anomaly kind: " + name);
}

AnomalySpec healthy_spec() { return {AnomalyKind::None, 0.0, "none"}; }

std::vector<AnomalySpec> table2_configurations() {
  // Intensities map each Table-2 knob onto [0, 1]:
  //   cpuoccupy -u 100% / 80%          -> 1.0 / 0.8
  //   cachecopy -c L1 -m 1 / -c L2 -m 2 -> 0.5 / 0.8
  //   membw -s 4K / 8K / 32K           -> 0.4 / 0.6 / 1.0
  //   memleak -s 1M -p 0.2 / 3M 0.4 / 10M 1.0 -> 0.3 / 0.55 / 1.0
  return {
      {AnomalyKind::Cpuoccupy, 1.00, "-u 100%"},
      {AnomalyKind::Cpuoccupy, 0.80, "-u 80%"},
      {AnomalyKind::Cachecopy, 0.50, "-c L1 -m 1"},
      {AnomalyKind::Cachecopy, 0.80, "-c L2 -m 2"},
      {AnomalyKind::Membw, 0.40, "-s 4K"},
      {AnomalyKind::Membw, 0.60, "-s 8K"},
      {AnomalyKind::Membw, 1.00, "-s 32K"},
      {AnomalyKind::Memleak, 0.30, "-s 1M -p 0.2"},
      {AnomalyKind::Memleak, 0.55, "-s 3M -p 0.4"},
      {AnomalyKind::Memleak, 1.00, "-s 10M -p 1"},
  };
}

double expected_slowdown(const AnomalySpec& spec) noexcept {
  const double intensity = std::clamp(spec.intensity, 0.0, 1.0);
  switch (spec.kind) {
    case AnomalyKind::Cpuoccupy: return 1.0 + 0.30 * intensity;
    case AnomalyKind::Membw: return 1.0 + 0.25 * intensity;
    case AnomalyKind::Cachecopy: return 1.0 + 0.20 * intensity;
    case AnomalyKind::Memleak: return 1.0 + 0.10 * intensity;
    case AnomalyKind::Iobw: return 1.0 + 0.30 * intensity;
    case AnomalyKind::Netoccupy: return 1.0 + 0.10 * intensity;
    case AnomalyKind::None: return 1.0;
  }
  return 1.0;
}

namespace {

/// memleak: allocates without freeing -> monotone anonymous-memory growth;
/// once the footprint crowds out the page cache the kernel starts reclaiming
/// and, under the biggest configs, swapping.
class MemleakInjector final : public AnomalyInjector {
 public:
  explicit MemleakInjector(double intensity) : rate_(0.05 + 0.60 * intensity) {}

  void perturb(double t_frac, ResourceState& state, util::Rng& rng) override {
    leaked_frac_ = rate_ * t_frac;  // linear growth over the run
    state.mem_anon_frac += leaked_frac_;
    state.mem_used_frac += leaked_frac_;
    // Leaked pages displace page cache before they cause reclaim.
    const double displaced = std::min(state.mem_cached_frac * 0.8, leaked_frac_ * 0.5);
    state.mem_cached_frac -= displaced;
    const double pressure = std::max(0.0, state.mem_used_frac - 0.75);
    if (pressure > 0.0) {
      state.reclaim_rate += 4000.0 * pressure * (1.0 + 0.2 * rng.gaussian());
      state.swap_rate += 1500.0 * pressure * std::max(0.0, 1.0 + 0.3 * rng.gaussian());
      state.major_fault_rate += 30.0 * pressure;
      state.cpu_system += 0.04 * pressure;
    }
    state.page_fault_rate += 900.0 * rate_;
  }

 private:
  double rate_;
  double leaked_frac_ = 0.0;
};

/// membw: a streaming kernel saturating memory bandwidth; raises bandwidth
/// pressure, steals a little CPU, and slows the victim (visible as lower
/// effective page-fault/activity rates plus more stall-ish system time).
class MembwInjector final : public AnomalyInjector {
 public:
  explicit MembwInjector(double intensity) : intensity_(intensity) {}

  void perturb(double /*t_frac*/, ResourceState& state, util::Rng& rng) override {
    state.membw_pressure += 2.2 * intensity_ * (1.0 + 0.05 * rng.gaussian());
    state.cache_pressure += 0.7 * intensity_;
    state.cpu_user += 0.12 * intensity_;
    state.cpu_system += 0.03 * intensity_;
    // The victim stalls on memory: its entire activity profile slows down.
    const double slowdown = 0.55 * intensity_;
    state.page_fault_rate *= 1.0 - slowdown;
    state.ctx_switch_rate *= 1.0 - 0.45 * intensity_;
    state.net_rate *= 1.0 - 0.4 * intensity_;
    state.io_rate *= 1.0 - 0.3 * intensity_;
    state.runnable_procs += 1.0 + intensity_;
  }

 private:
  double intensity_;
};

/// cpuoccupy: a spinner pinned at -u percent utilization.
class CpuoccupyInjector final : public AnomalyInjector {
 public:
  explicit CpuoccupyInjector(double utilization) : utilization_(utilization) {}

  void perturb(double /*t_frac*/, ResourceState& state, util::Rng& rng) override {
    // The spinner saturates its core even during the application's quiet
    // phases, lifting the *floor* of CPU utilization for the whole run.
    state.cpu_user += utilization_ * (0.9 + 0.04 * rng.gaussian());
    state.runnable_procs += 2.0 + 4.0 * utilization_;
    // The descheduled application makes less progress per second.
    const double slowdown = 0.55 * utilization_;
    state.page_fault_rate *= 1.0 - slowdown;
    state.ctx_switch_rate *= 1.0 - 0.45 * utilization_;
    state.net_rate *= 1.0 - 0.45 * utilization_;
    state.io_rate *= 1.0 - 0.3 * utilization_;
    state.interrupt_rate *= 1.0 - 0.3 * utilization_;
  }

 private:
  double utilization_;
};

/// cachecopy: repeatedly swaps two arrays sized to a cache level; thrashes
/// that level and inflates context switching and cache pressure.
class CachecopyInjector final : public AnomalyInjector {
 public:
  explicit CachecopyInjector(double intensity) : intensity_(intensity) {}

  void perturb(double t_frac, ResourceState& state, util::Rng& rng) override {
    // The copy loop has a short duty cycle; modulate with a fast square wave.
    const double duty = std::fmod(t_frac * 97.0, 1.0) < 0.7 ? 1.0 : 0.4;
    state.cache_pressure += 2.0 * intensity_ * duty * (1.0 + 0.08 * rng.gaussian());
    state.cpu_user += 0.25 * intensity_ * duty;
    state.ctx_switch_rate += 1200.0 * intensity_ * duty;
    state.interrupt_rate += 300.0 * intensity_ * duty;
    // Evicted working sets mean the victim re-faults and runs slower.
    state.page_fault_rate *= 1.0 - 0.45 * intensity_ * duty;
    state.net_rate *= 1.0 - 0.3 * intensity_;
    state.runnable_procs += 1.0 + intensity_;
  }

 private:
  double intensity_;
};

/// iobw: saturates the filesystem; in the paper these runs were terminated by
/// system administrators, but the injector exists for failure-injection tests
/// and the Empire-style organic I/O degradation experiment.
class IobwInjector final : public AnomalyInjector {
 public:
  explicit IobwInjector(double intensity) : intensity_(intensity) {}

  void perturb(double /*t_frac*/, ResourceState& state, util::Rng& rng) override {
    state.io_rate += 120.0 * intensity_ * std::max(0.0, 1.0 + 0.3 * rng.gaussian());
    state.cpu_iowait += 0.25 * intensity_;
    state.blocked_procs += 2.0 * intensity_;
    state.major_fault_rate += 10.0 * intensity_;
    state.page_fault_rate *= 1.0 - 0.3 * intensity_;
  }

 private:
  double intensity_;
};

/// netoccupy: network contention; only observable with >= 2 nodes in HPAS,
/// kept for completeness.
class NetoccupyInjector final : public AnomalyInjector {
 public:
  explicit NetoccupyInjector(double intensity) : intensity_(intensity) {}

  void perturb(double /*t_frac*/, ResourceState& state, util::Rng& rng) override {
    state.net_rate += 80.0 * intensity_ * std::max(0.0, 1.0 + 0.2 * rng.gaussian());
    state.interrupt_rate += 1200.0 * intensity_;
    state.cpu_system += 0.06 * intensity_;
  }

 private:
  double intensity_;
};

}  // namespace

std::unique_ptr<AnomalyInjector> make_injector(const AnomalySpec& spec,
                                               util::Rng& /*rng*/) {
  const double intensity = std::clamp(spec.intensity, 0.0, 1.0);
  switch (spec.kind) {
    case AnomalyKind::None: return nullptr;
    case AnomalyKind::Memleak: return std::make_unique<MemleakInjector>(intensity);
    case AnomalyKind::Membw: return std::make_unique<MembwInjector>(intensity);
    case AnomalyKind::Cpuoccupy: return std::make_unique<CpuoccupyInjector>(intensity);
    case AnomalyKind::Cachecopy: return std::make_unique<CachecopyInjector>(intensity);
    case AnomalyKind::Iobw: return std::make_unique<IobwInjector>(intensity);
    case AnomalyKind::Netoccupy: return std::make_unique<NetoccupyInjector>(intensity);
  }
  return nullptr;
}

}  // namespace prodigy::hpas
