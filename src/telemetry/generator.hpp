// Simulated LDMS data collection: runs an application profile on a set of
// compute nodes and produces per-node multivariate time series exactly as the
// 1 Hz ldmsd samplers would report them — counters accumulate from a random
// boot offset, gauges carry sampling noise, and a small fraction of samples
// is lost in flight (NaN) as happens during real aggregation.
#pragma once

#include "hpas/anomalies.hpp"
#include "telemetry/app_profile.hpp"
#include "tensor/matrix.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace prodigy::telemetry {

/// Raw telemetry of one compute node over one application run:
/// a (T x M) matrix over the metric catalog, plus identity and ground truth.
struct NodeSeries {
  std::int64_t job_id = 0;
  std::int64_t component_id = 0;
  std::string app;
  std::string anomaly = "none";  // HPAS anomaly name, or "none"
  int label = 0;                 // ground truth: 1 = anomalous
  tensor::Matrix values;         // (timestamps x metric_catalog())
};

struct JobTelemetry {
  std::int64_t job_id = 0;
  std::string app;
  std::vector<NodeSeries> nodes;
};

struct RunConfig {
  AppProfile app;
  std::int64_t job_id = 1;
  std::size_t num_nodes = 4;
  double duration_s = 300.0;
  double node_ram_kb = 128.0 * 1024.0 * 1024.0;  // Eclipse: 128 GB
  std::uint64_t seed = 42;
  /// Probability that any individual reading is lost (NaN).
  double dropout = 0.003;
  /// Synthetic anomaly to inject (kind None = healthy run).
  hpas::AnomalySpec anomaly = hpas::healthy_spec();
  /// Which nodes receive the anomaly; empty = all nodes when anomalous.
  std::vector<std::size_t> anomalous_nodes;
  /// Organic (non-HPAS) I/O backend degradation in [0, 1]; models the
  /// Empire/Lustre slowdown of §6.2 — checkpoint phases stretch and stall.
  double io_degradation = 0.0;
  /// First component id assigned to this job's nodes.
  std::int64_t first_component_id = 0;
  /// Gradual healthy-baseline drift: every node's resource state ramps
  /// linearly toward a shifted operating point, reaching this relative
  /// magnitude at the end of the run (0.3 = ~30% shift on the drifting
  /// dimensions).  Models workload-mix / firmware / aging change — the NEW
  /// NORMAL, so drifted samples stay labeled healthy; a frozen detector's
  /// false alarms on them are exactly what online adaptation must fix.
  double baseline_drift = 0.0;
  /// Fraction of the run [0, 1) after which the injected anomaly activates
  /// (its intensity ramp is re-normalized to the remaining time, so e.g. a
  /// memleak starting at 0.5 still leaks to full size by run end).  0 keeps
  /// the HPAS default of anomalies active from the start.  Lets an anomaly
  /// overlap an already-drifted baseline.
  double anomaly_start_frac = 0.0;
};

/// Generates the full job telemetry for one run.
JobTelemetry generate_run(const RunConfig& config);

}  // namespace prodigy::telemetry
