#include "telemetry/gpu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace prodigy::telemetry::gpu {

namespace {

enum GpuSynthId {
  kGpuUtil, kMemCopyUtil, kFbUsed, kFbFree, kPowerUsage, kGpuTemp, kSmClock,
  kMemClock, kPcieTxBytes, kPcieRxBytes, kNvlinkTxBytes, kXidErrors,
  kGpuSynthCount,
};

std::vector<MetricSpec> build_gpu_catalog() {
  using K = MetricKind;
  return {
      {"gpu_utilization", Sampler::Dcgm, K::Gauge, kGpuUtil},
      {"mem_copy_utilization", Sampler::Dcgm, K::Gauge, kMemCopyUtil},
      {"fb_used", Sampler::Dcgm, K::Gauge, kFbUsed},
      {"fb_free", Sampler::Dcgm, K::Gauge, kFbFree},
      {"power_usage", Sampler::Dcgm, K::Gauge, kPowerUsage},
      {"gpu_temp", Sampler::Dcgm, K::Gauge, kGpuTemp},
      {"sm_clock", Sampler::Dcgm, K::Gauge, kSmClock},
      {"memory_clock", Sampler::Dcgm, K::Gauge, kMemClock},
      {"pcie_tx_bytes", Sampler::Dcgm, K::Counter, kPcieTxBytes},
      {"pcie_rx_bytes", Sampler::Dcgm, K::Counter, kPcieRxBytes},
      {"nvlink_tx_bytes", Sampler::Dcgm, K::Counter, kNvlinkTxBytes},
      {"xid_errors", Sampler::Dcgm, K::Counter, kXidErrors},
  };
}

}  // namespace

const std::vector<MetricSpec>& gpu_metric_catalog() {
  static const std::vector<MetricSpec> catalog = build_gpu_catalog();
  return catalog;
}

std::size_t gpu_metric_count() { return gpu_metric_catalog().size(); }

std::vector<double> synthesize_gpu_rates(const GpuState& state, double fb_total_mb,
                                         util::Rng& rng) {
  auto jitter = [&rng](double value, double rel) {
    return std::max(0.0, value * (1.0 + rel * rng.gaussian()));
  };
  const double fb_used = std::clamp(state.fb_used_frac, 0.0, 1.0) * fb_total_mb;

  std::vector<double> rates(kGpuSynthCount, 0.0);
  rates[kGpuUtil] = std::clamp(jitter(100.0 * state.util, 0.05), 0.0, 100.0);
  rates[kMemCopyUtil] = std::clamp(jitter(100.0 * state.mem_util, 0.08), 0.0, 100.0);
  rates[kFbUsed] = jitter(fb_used, 0.005);
  rates[kFbFree] = jitter(std::max(0.0, fb_total_mb - fb_used), 0.005);
  rates[kPowerUsage] = jitter(state.power_w, 0.02);
  rates[kGpuTemp] = jitter(state.temperature_c, 0.01);
  rates[kSmClock] = jitter(state.sm_clock_mhz, 0.005);
  rates[kMemClock] = jitter(877.0 + 0.2 * state.sm_clock_mhz, 0.003);
  rates[kPcieTxBytes] = jitter(state.pcie_tx_mb * 1e6, 0.15);
  rates[kPcieRxBytes] = jitter(state.pcie_rx_mb * 1e6, 0.15);
  rates[kNvlinkTxBytes] = jitter(state.nvlink_mb * 1e6, 0.20);
  rates[kXidErrors] = state.xid_error_rate > 0.0 && rng.bernoulli(
                          std::min(1.0, state.xid_error_rate))
                          ? 1.0
                          : 0.0;

  const auto& catalog = gpu_metric_catalog();
  std::vector<double> out(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out[i] = rates[static_cast<std::size_t>(catalog[i].synth_id)];
  }
  return out;
}

namespace {

std::vector<GpuAppProfile> build_gpu_applications() {
  // Host profiles are lighter than their CPU-only builds: the device does
  // the heavy lifting, the host stages data and drives communication.
  auto host = [](const char* base, double cpu_scale) {
    AppProfile profile = application_by_name(base);
    profile.cpu_intensity *= cpu_scale;
    return profile;
  };
  return {
      {"LAMMPS-GPU", host("LAMMPS", 0.35), 0.90, 0.45, 0.35, 10.0},
      {"HACC-GPU", host("HACC", 0.30), 0.85, 0.70, 0.50, 25.0},
      {"sw4-GPU", host("sw4", 0.40), 0.80, 0.55, 0.45, 16.0},
  };
}

GpuState gpu_state_at(const GpuAppProfile& app, double t, double duration,
                      const RunVariation& variation, util::Rng& rng) {
  GpuState state;
  const double init_ramp = std::min(1.0, t / 30.0);
  const double term_ramp = std::min(1.0, std::max(0.0, (duration - t) / 20.0));
  const double envelope = init_ramp * term_ramp;

  // Kernel bursts: high occupancy with short staging gaps.
  const double two_pi = 2.0 * std::numbers::pi;
  const double phase = std::sin(two_pi * (t + variation.phase_offset) /
                                app.kernel_period_s);
  const double duty = phase > -0.6 ? 1.0 : 0.25;  // ~80% duty cycle
  const double activity = duty * envelope * variation.cpu_scale;

  state.util = std::clamp(app.gpu_intensity * activity * (1.0 + 0.04 * rng.gaussian()),
                          0.0, 1.0);
  state.mem_util = std::clamp(0.6 * state.util + 0.1, 0.0, 1.0);
  state.fb_used_frac = std::clamp(
      (0.08 + app.fb_footprint * variation.mem_scale) * (0.85 + 0.15 * init_ramp),
      0.0, 0.98);
  state.pcie_tx_mb = (2.0 + 800.0 * app.pcie_intensity * (duty < 1.0 ? 1.0 : 0.2)) *
                     variation.rate_scale;
  state.pcie_rx_mb = 0.6 * state.pcie_tx_mb;
  state.nvlink_mb = 300.0 * app.host.net_intensity * activity;
  state.power_w = 60.0 + 290.0 * state.util;
  state.temperature_c = 32.0 + 45.0 * state.util;
  state.sm_clock_mhz = 1410.0 - 30.0 * std::max(0.0, state.temperature_c - 70.0);
  return state;
}

void apply_gpu_anomaly(GpuAnomalyKind kind, double t_frac, GpuState& state,
                       util::Rng& rng) {
  switch (kind) {
    case GpuAnomalyKind::None:
      return;
    case GpuAnomalyKind::GpuMemleak: {
      // Device allocations never freed: framebuffer fills monotonically;
      // once full, allocation retries surface as Xid errors and stalls.
      const double leak = 0.55 * t_frac;
      state.fb_used_frac = std::min(0.99, state.fb_used_frac + leak);
      if (state.fb_used_frac > 0.95) {
        state.xid_error_rate = 0.2;
        state.util *= 0.7;  // kernels stall on allocation retries
      }
      state.pcie_rx_mb *= 1.0 + 0.3 * t_frac;  // eviction traffic
      return;
    }
    case GpuAnomalyKind::ThermalThrottle: {
      // Cooling failure: temperature climbs, the driver steps clocks down
      // hard, and sustained occupancy produces less throughput.
      state.temperature_c += 32.0 + 4.0 * rng.gaussian();
      const double over = std::max(0.0, state.temperature_c - 75.0);
      state.sm_clock_mhz = std::max(500.0, state.sm_clock_mhz - 45.0 * over);
      state.power_w *= 0.8;           // clock-capped board draws less
      state.util = std::min(1.0, state.util * 1.15);  // same work, longer kernels
      state.pcie_tx_mb *= 0.7;        // staging slows with the device
      return;
    }
  }
}

}  // namespace

const std::vector<GpuAppProfile>& gpu_applications() {
  static const std::vector<GpuAppProfile> apps = build_gpu_applications();
  return apps;
}

const GpuAppProfile& gpu_application_by_name(const std::string& name) {
  for (const auto& app : gpu_applications()) {
    if (app.name == name) return app;
  }
  throw std::out_of_range("gpu_application_by_name: unknown application " + name);
}

std::string to_string(GpuAnomalyKind kind) {
  switch (kind) {
    case GpuAnomalyKind::None: return "none";
    case GpuAnomalyKind::GpuMemleak: return "gpu_memleak";
    case GpuAnomalyKind::ThermalThrottle: return "thermal_throttle";
  }
  return "none";
}

std::vector<std::string> heterogeneous_metric_names() {
  std::vector<std::string> names;
  names.reserve(metric_count() + gpu_metric_count());
  for (const auto& spec : metric_catalog()) names.push_back(full_metric_name(spec));
  for (const auto& spec : gpu_metric_catalog()) {
    names.push_back(full_metric_name(spec));
  }
  return names;
}

std::vector<MetricKind> heterogeneous_metric_kinds() {
  std::vector<MetricKind> kinds;
  kinds.reserve(metric_count() + gpu_metric_count());
  for (const auto& spec : metric_catalog()) kinds.push_back(spec.kind);
  for (const auto& spec : gpu_metric_catalog()) kinds.push_back(spec.kind);
  return kinds;
}

JobTelemetry generate_gpu_run(const GpuRunConfig& config) {
  const auto timestamps = static_cast<std::size_t>(std::max(1.0, config.duration_s));
  const std::size_t cpu_cols = metric_count();
  const std::size_t gpu_cols = gpu_metric_count();
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

  JobTelemetry job;
  job.job_id = config.job_id;
  job.app = config.app.name;
  job.nodes.reserve(config.num_nodes);

  util::Rng job_rng(config.seed ^ static_cast<std::uint64_t>(config.job_id) * 0x9e37ULL);
  const RunVariation run_variation = sample_run_variation(job_rng);
  const auto& gpu_catalog = gpu_metric_catalog();
  const auto& cpu_catalog = metric_catalog();

  for (std::size_t node = 0; node < config.num_nodes; ++node) {
    util::Rng rng = job_rng.fork();
    const bool anomalous =
        config.anomaly != GpuAnomalyKind::None &&
        (config.anomalous_nodes.empty() ||
         std::find(config.anomalous_nodes.begin(), config.anomalous_nodes.end(),
                   node) != config.anomalous_nodes.end());

    NodeSeries series;
    series.job_id = config.job_id;
    series.component_id = config.first_component_id + static_cast<std::int64_t>(node);
    series.app = config.app.name;
    series.label = anomalous ? 1 : 0;
    series.anomaly = anomalous ? to_string(config.anomaly) : "none";
    series.values = tensor::Matrix(timestamps, cpu_cols + gpu_cols);

    RunVariation node_variation = run_variation;
    node_variation.phase_offset += rng.uniform(0.0, 3.0);

    std::vector<double> counters(cpu_cols + gpu_cols, 0.0);
    for (std::size_t m = 0; m < cpu_cols; ++m) {
      if (cpu_catalog[m].kind == MetricKind::Counter) {
        counters[m] = rng.uniform(1e6, 5e8);
      }
    }
    for (std::size_t m = 0; m < gpu_cols; ++m) {
      if (gpu_catalog[m].kind == MetricKind::Counter) {
        counters[cpu_cols + m] = rng.uniform(1e8, 1e11);
      }
    }

    for (std::size_t t = 0; t < timestamps; ++t) {
      const double td = static_cast<double>(t);
      // Host side.
      ResourceState host =
          state_at(config.app.host, node_variation, td, config.duration_s, rng);
      const auto cpu_rates = synthesize_rates(host, config.node_ram_kb, rng);
      // Device side.
      GpuState device =
          gpu_state_at(config.app, td, config.duration_s, node_variation, rng);
      if (anomalous) {
        apply_gpu_anomaly(config.anomaly, td / config.duration_s, device, rng);
      }
      const auto gpu_rates = synthesize_gpu_rates(device, config.fb_total_mb, rng);

      auto emit = [&](std::size_t column, double rate, MetricKind kind) {
        double reported;
        if (kind == MetricKind::Counter) {
          counters[column] += std::max(0.0, rate);
          reported = counters[column];
        } else {
          reported = rate;
        }
        series.values(t, column) = rng.bernoulli(config.dropout) ? kNaN : reported;
      };
      for (std::size_t m = 0; m < cpu_cols; ++m) {
        emit(m, cpu_rates[m], cpu_catalog[m].kind);
      }
      for (std::size_t m = 0; m < gpu_cols; ++m) {
        emit(cpu_cols + m, gpu_rates[m], gpu_catalog[m].kind);
      }
    }
    job.nodes.push_back(std::move(series));
  }
  return job;
}

}  // namespace prodigy::telemetry::gpu
