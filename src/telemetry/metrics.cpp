#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace prodigy::telemetry {

std::string to_string(Sampler sampler) {
  switch (sampler) {
    case Sampler::Meminfo: return "meminfo";
    case Sampler::Vmstat: return "vmstat";
    case Sampler::Procstat: return "procstat";
    case Sampler::Dcgm: return "dcgm";
  }
  return "unknown";
}

std::string full_metric_name(const MetricSpec& spec) {
  return spec.name + "::" + to_string(spec.sampler);
}

namespace {

// Synthesis ids; keep in sync with synthesize_rates().
enum SynthId {
  kMemFree, kMemAvailable, kActive, kInactive, kAnonPages, kCached, kBuffers,
  kDirty, kWriteback, kMapped, kShmem, kSlab, kSReclaimable, kKernelStack,
  kPageTables, kCommittedAs, kSwapFree,
  kPgfault, kPgmajfault, kPgpgin, kPgpgout, kPswpin, kPswpout, kPgrotated,
  kPginodesteal, kPgstealKswapd, kPgscanKswapd, kPgfree, kPgactivate,
  kPgdeactivate, kNumaHit, kNumaMiss, kNrDirty, kNrWriteback, kNrFreePages,
  kThpFaultAlloc, kNrAnonPages,
  kCpuUser, kCpuNice, kCpuSystem, kCpuIdle, kCpuIowait, kCpuIrq, kCpuSoftirq,
  kIntr, kCtxt, kProcesses, kProcsRunning, kProcsBlocked,
  kSynthCount,
};

std::vector<MetricSpec> build_catalog() {
  using S = Sampler;
  using K = MetricKind;
  return {
      // --- meminfo gauges (kB) ---
      {"MemFree", S::Meminfo, K::Gauge, kMemFree},
      {"MemAvailable", S::Meminfo, K::Gauge, kMemAvailable},
      {"Active", S::Meminfo, K::Gauge, kActive},
      {"Inactive", S::Meminfo, K::Gauge, kInactive},
      {"AnonPages", S::Meminfo, K::Gauge, kAnonPages},
      {"Cached", S::Meminfo, K::Gauge, kCached},
      {"Buffers", S::Meminfo, K::Gauge, kBuffers},
      {"Dirty", S::Meminfo, K::Gauge, kDirty},
      {"Writeback", S::Meminfo, K::Gauge, kWriteback},
      {"Mapped", S::Meminfo, K::Gauge, kMapped},
      {"Shmem", S::Meminfo, K::Gauge, kShmem},
      {"Slab", S::Meminfo, K::Gauge, kSlab},
      {"SReclaimable", S::Meminfo, K::Gauge, kSReclaimable},
      {"KernelStack", S::Meminfo, K::Gauge, kKernelStack},
      {"PageTables", S::Meminfo, K::Gauge, kPageTables},
      {"Committed_AS", S::Meminfo, K::Gauge, kCommittedAs},
      {"SwapFree", S::Meminfo, K::Gauge, kSwapFree},
      // --- vmstat ---
      {"pgfault", S::Vmstat, K::Counter, kPgfault},
      {"pgmajfault", S::Vmstat, K::Counter, kPgmajfault},
      {"pgpgin", S::Vmstat, K::Counter, kPgpgin},
      {"pgpgout", S::Vmstat, K::Counter, kPgpgout},
      {"pswpin", S::Vmstat, K::Counter, kPswpin},
      {"pswpout", S::Vmstat, K::Counter, kPswpout},
      {"pgrotated", S::Vmstat, K::Counter, kPgrotated},
      {"pginodesteal", S::Vmstat, K::Counter, kPginodesteal},
      {"pgsteal_kswapd", S::Vmstat, K::Counter, kPgstealKswapd},
      {"pgscan_kswapd", S::Vmstat, K::Counter, kPgscanKswapd},
      {"pgfree", S::Vmstat, K::Counter, kPgfree},
      {"pgactivate", S::Vmstat, K::Counter, kPgactivate},
      {"pgdeactivate", S::Vmstat, K::Counter, kPgdeactivate},
      {"numa_hit", S::Vmstat, K::Counter, kNumaHit},
      {"numa_miss", S::Vmstat, K::Counter, kNumaMiss},
      {"nr_dirty", S::Vmstat, K::Gauge, kNrDirty},
      {"nr_writeback", S::Vmstat, K::Gauge, kNrWriteback},
      {"nr_free_pages", S::Vmstat, K::Gauge, kNrFreePages},
      {"nr_anon_pages", S::Vmstat, K::Gauge, kNrAnonPages},
      {"thp_fault_alloc", S::Vmstat, K::Counter, kThpFaultAlloc},
      // --- procstat (USER_HZ ticks aggregated across cores; counters) ---
      {"user", S::Procstat, K::Counter, kCpuUser},
      {"nice", S::Procstat, K::Counter, kCpuNice},
      {"sys", S::Procstat, K::Counter, kCpuSystem},
      {"idle", S::Procstat, K::Counter, kCpuIdle},
      {"iowait", S::Procstat, K::Counter, kCpuIowait},
      {"irq", S::Procstat, K::Counter, kCpuIrq},
      {"softirq", S::Procstat, K::Counter, kCpuSoftirq},
      {"intr", S::Procstat, K::Counter, kIntr},
      {"ctxt", S::Procstat, K::Counter, kCtxt},
      {"processes", S::Procstat, K::Counter, kProcesses},
      {"procs_running", S::Procstat, K::Gauge, kProcsRunning},
      {"procs_blocked", S::Procstat, K::Gauge, kProcsBlocked},
  };
}

}  // namespace

const std::vector<MetricSpec>& metric_catalog() {
  static const std::vector<MetricSpec> catalog = build_catalog();
  return catalog;
}

std::size_t metric_count() { return metric_catalog().size(); }

std::size_t metric_index(const std::string& full_name) {
  static const std::unordered_map<std::string, std::size_t> index = [] {
    std::unordered_map<std::string, std::size_t> map;
    const auto& catalog = metric_catalog();
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      map.emplace(full_metric_name(catalog[i]), i);
    }
    return map;
  }();
  const auto it = index.find(full_name);
  if (it == index.end()) {
    throw std::out_of_range("metric_index: unknown metric " + full_name);
  }
  return it->second;
}

std::vector<double> synthesize_rates(const ResourceState& s, double node_ram_kb,
                                     util::Rng& rng) {
  // CPU fractions normalized so they never exceed one node-second.
  const double busy = s.cpu_user + s.cpu_system + s.cpu_iowait;
  const double scale = busy > 0.97 ? 0.97 / busy : 1.0;
  const double user = s.cpu_user * scale;
  const double system = s.cpu_system * scale;
  const double iowait = s.cpu_iowait * scale;
  const double idle = 1.0 - user - system - iowait;

  const double used = std::clamp(s.mem_used_frac, 0.02, 0.98);
  const double anon = std::clamp(s.mem_anon_frac, 0.01, used);
  const double cached = std::clamp(s.mem_cached_frac, 0.005, 0.9);
  const double free_kb = node_ram_kb * (1.0 - used);
  const double swap_total_kb = node_ram_kb * 0.25;

  auto jitter = [&rng](double value, double rel) {
    return std::max(0.0, value * (1.0 + rel * rng.gaussian()));
  };

  std::vector<double> rates(kSynthCount, 0.0);

  // meminfo gauges (kB).
  rates[kMemFree] = jitter(free_kb, 0.01);
  rates[kMemAvailable] = jitter(free_kb + node_ram_kb * cached * 0.8, 0.01);
  rates[kActive] = jitter(node_ram_kb * (anon * 0.7 + cached * 0.45), 0.02);
  rates[kInactive] = jitter(node_ram_kb * (anon * 0.2 + cached * 0.5), 0.02);
  rates[kAnonPages] = jitter(node_ram_kb * anon, 0.01);
  rates[kCached] = jitter(node_ram_kb * cached, 0.01);
  rates[kBuffers] = jitter(node_ram_kb * 0.01, 0.03);
  rates[kDirty] = jitter(node_ram_kb * 0.0004 * (1.0 + 4.0 * s.io_rate / 50.0), 0.2);
  rates[kWriteback] = jitter(node_ram_kb * 0.00005 * (1.0 + s.io_rate / 20.0), 0.5);
  rates[kMapped] = jitter(node_ram_kb * anon * 0.25, 0.02);
  rates[kShmem] = jitter(node_ram_kb * 0.006, 0.02);
  rates[kSlab] = jitter(node_ram_kb * (0.012 + 0.002 * s.reclaim_rate / 1000.0), 0.02);
  rates[kSReclaimable] = jitter(node_ram_kb * 0.008, 0.02);
  rates[kKernelStack] = jitter(node_ram_kb * 0.0002 + 16.0 * s.runnable_procs, 0.02);
  rates[kPageTables] = jitter(node_ram_kb * anon * 0.002, 0.03);
  rates[kCommittedAs] = jitter(node_ram_kb * (anon * 1.4 + 0.05), 0.01);
  rates[kSwapFree] =
      jitter(std::max(0.0, swap_total_kb - 4.0 * s.swap_rate * swap_total_kb / 1e4), 0.01);

  // vmstat rates (events/s).
  rates[kPgfault] = jitter(s.page_fault_rate, 0.10);
  rates[kPgmajfault] = jitter(s.major_fault_rate, 0.30);
  rates[kPgpgin] = jitter(20.0 + 8.0 * s.io_rate, 0.20);
  rates[kPgpgout] = jitter(15.0 + 10.0 * s.io_rate, 0.20);
  rates[kPswpin] = jitter(0.35 * s.swap_rate, 0.30);
  rates[kPswpout] = jitter(0.65 * s.swap_rate, 0.30);
  rates[kPgrotated] = jitter(0.5 + 0.12 * s.swap_rate + 0.05 * s.reclaim_rate, 0.40);
  rates[kPginodesteal] = jitter(0.02 * s.reclaim_rate, 0.50);
  rates[kPgstealKswapd] = jitter(0.6 * s.reclaim_rate, 0.25);
  rates[kPgscanKswapd] = jitter(1.4 * s.reclaim_rate, 0.25);
  rates[kPgfree] = jitter(300.0 + 0.9 * s.page_fault_rate + s.reclaim_rate, 0.10);
  rates[kPgactivate] = jitter(40.0 + 0.2 * s.page_fault_rate + 160.0 * s.cache_pressure, 0.15);
  rates[kPgdeactivate] = jitter(5.0 + 0.6 * s.reclaim_rate, 0.30);
  rates[kNumaHit] = jitter(2000.0 + 2.5 * s.page_fault_rate + 1200.0 * s.membw_pressure, 0.08);
  rates[kNumaMiss] = jitter(10.0 + 500.0 * s.membw_pressure, 0.25);
  rates[kNrDirty] = jitter(80.0 + 30.0 * s.io_rate, 0.25);
  rates[kNrWriteback] = jitter(2.0 + 1.5 * s.io_rate, 0.50);
  rates[kNrFreePages] = jitter(free_kb / 4.0, 0.01);  // 4 kB pages
  rates[kNrAnonPages] = jitter(node_ram_kb * anon / 4.0, 0.01);
  rates[kThpFaultAlloc] = jitter(0.5 + 0.002 * s.page_fault_rate, 0.40);

  // procstat rates (ticks/s across all cores; 100 Hz * ncores=36-equivalent).
  const double ticks = 100.0 * 36.0;
  rates[kCpuUser] = jitter(ticks * user, 0.02);
  rates[kCpuNice] = jitter(ticks * 0.001, 0.30);
  rates[kCpuSystem] = jitter(ticks * system, 0.03);
  rates[kCpuIdle] = jitter(ticks * std::max(0.0, idle), 0.02);
  rates[kCpuIowait] = jitter(ticks * iowait, 0.10);
  rates[kCpuIrq] = jitter(0.003 * s.interrupt_rate, 0.20);
  rates[kCpuSoftirq] = jitter(0.006 * s.interrupt_rate + 0.4 * s.net_rate, 0.20);
  rates[kIntr] = jitter(s.interrupt_rate + 25.0 * s.net_rate, 0.08);
  rates[kCtxt] = jitter(s.ctx_switch_rate, 0.08);
  rates[kProcesses] = jitter(1.5 + 0.2 * s.runnable_procs, 0.40);
  rates[kProcsRunning] = std::max(1.0, jitter(s.runnable_procs, 0.15));
  rates[kProcsBlocked] = std::max(0.0, jitter(s.blocked_procs, 0.30));

  // Map synth table -> catalog order.
  const auto& catalog = metric_catalog();
  std::vector<double> out(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out[i] = rates[static_cast<std::size_t>(catalog[i].synth_id)];
  }
  return out;
}

}  // namespace prodigy::telemetry
