#include "telemetry/app_profile.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace prodigy::telemetry {

RunVariation sample_run_variation(util::Rng& rng, double spread) {
  RunVariation variation;
  variation.cpu_scale = std::max(0.5, 1.0 + spread * rng.gaussian());
  variation.mem_scale = std::max(0.5, 1.0 + spread * rng.gaussian());
  variation.rate_scale = std::max(0.5, 1.0 + spread * rng.gaussian());
  variation.phase_offset = rng.uniform(0.0, 60.0);
  return variation;
}

ResourceState state_at(const AppProfile& app, const RunVariation& variation,
                       double t, double duration, util::Rng& rng) {
  ResourceState state;

  // Initialization and termination ramps (the paper trims the first/last
  // 60 s precisely because these phases look nothing like steady state).
  const double init_ramp = std::min(1.0, t / 45.0);
  const double term_ramp = std::min(1.0, std::max(0.0, (duration - t) / 30.0));
  const double envelope = init_ramp * term_ramp;

  // Periodic compute phases plus a slow drift across the run.
  const double two_pi = 2.0 * std::numbers::pi;
  const double phase =
      std::sin(two_pi * (t + variation.phase_offset) / app.phase_period_s);
  const double harmonics =
      0.35 * std::sin(two_pi * 2.7 * (t + variation.phase_offset) / app.phase_period_s);
  const double drift = 0.05 * std::sin(two_pi * t / (duration * 1.9));
  double activity = 1.0 + app.phase_depth * (phase + harmonics) + drift;
  if (rng.bernoulli(app.burstiness * 0.05)) {
    activity += rng.uniform(0.1, 0.4);  // OS noise / load spike
  }
  activity = std::max(0.05, activity) * envelope;

  // I/O bursts (checkpoints) on their own period.
  const double io_phase = std::fmod(t + variation.phase_offset, app.io_period_s);
  const double io_burst = io_phase < 8.0 ? 1.0 : 0.08;

  const double cpu = app.cpu_intensity * variation.cpu_scale * activity;
  state.cpu_user = 0.03 + cpu;
  state.cpu_system = 0.015 + 0.08 * cpu + 0.02 * app.net_intensity * activity;
  state.cpu_iowait = 0.002 + 0.04 * app.io_intensity * io_burst;

  const double footprint =
      (app.mem_footprint + app.mem_ramp * (t / std::max(1.0, duration))) *
      variation.mem_scale * (0.9 + 0.1 * init_ramp);
  state.mem_anon_frac = 0.05 + footprint * 0.8;
  state.mem_cached_frac = 0.10 + 0.05 * app.io_intensity + footprint * 0.1;
  state.mem_used_frac = state.mem_anon_frac + state.mem_cached_frac + 0.05;

  state.page_fault_rate =
      (150.0 + 2500.0 * footprint * activity) * variation.rate_scale;
  state.major_fault_rate = 0.2 * app.io_intensity * io_burst;
  state.swap_rate = 0.0;
  state.reclaim_rate = 0.0;

  state.cache_pressure = 0.05 + app.cache_intensity * activity;
  state.membw_pressure = 0.05 + app.membw_intensity * activity;

  state.io_rate = (0.5 + 35.0 * app.io_intensity * io_burst) * variation.rate_scale;
  state.net_rate = (0.3 + 20.0 * app.net_intensity * activity) * variation.rate_scale;

  state.ctx_switch_rate =
      (900.0 + 5000.0 * app.net_intensity * activity + 1200.0 * cpu) *
      variation.rate_scale;
  state.interrupt_rate =
      (600.0 + 2500.0 * app.net_intensity * activity) * variation.rate_scale;
  state.runnable_procs = 1.0 + 30.0 * cpu;
  state.blocked_procs = 0.1 + 3.0 * app.io_intensity * io_burst;
  return state;
}

namespace {

std::vector<AppProfile> build_eclipse() {
  return {
      // name                cpu   mem  ramp  cache membw  io  io_per net  period depth burst
      {"LAMMPS",            0.85, 0.35, 0.03, 0.55, 0.45, 0.10, 180.0, 0.45, 35.0, 0.25, 0.10},
      {"HACC",              0.80, 0.55, 0.05, 0.40, 0.70, 0.20, 240.0, 0.55, 90.0, 0.40, 0.08},
      {"sw4",               0.75, 0.45, 0.04, 0.50, 0.60, 0.25, 150.0, 0.50, 55.0, 0.30, 0.10},
      {"ExaMiniMD",         0.85, 0.30, 0.02, 0.55, 0.40, 0.05, 300.0, 0.40, 30.0, 0.22, 0.08},
      {"SWFFT",             0.70, 0.50, 0.02, 0.35, 0.80, 0.08, 260.0, 0.70, 25.0, 0.45, 0.12},
      {"sw4lite",           0.78, 0.40, 0.03, 0.50, 0.55, 0.15, 170.0, 0.45, 50.0, 0.28, 0.10},
  };
}

std::vector<AppProfile> build_volta() {
  return {
      {"bt",                0.80, 0.40, 0.02, 0.45, 0.55, 0.08, 200.0, 0.50, 28.0, 0.30, 0.08},
      {"cg",                0.65, 0.45, 0.01, 0.30, 0.85, 0.03, 400.0, 0.60, 18.0, 0.40, 0.10},
      {"ft",                0.70, 0.55, 0.02, 0.35, 0.80, 0.05, 350.0, 0.75, 22.0, 0.45, 0.10},
      {"lu",                0.82, 0.35, 0.02, 0.50, 0.50, 0.05, 300.0, 0.45, 32.0, 0.28, 0.08},
      {"mg",                0.72, 0.50, 0.02, 0.40, 0.75, 0.04, 380.0, 0.55, 26.0, 0.38, 0.09},
      {"sp",                0.78, 0.38, 0.02, 0.48, 0.52, 0.06, 280.0, 0.48, 30.0, 0.30, 0.08},
      {"miniMD",            0.85, 0.28, 0.02, 0.55, 0.38, 0.04, 320.0, 0.40, 27.0, 0.22, 0.08},
      {"CoMD",              0.83, 0.30, 0.02, 0.52, 0.42, 0.04, 320.0, 0.42, 29.0, 0.24, 0.08},
      {"miniGhost",         0.68, 0.42, 0.02, 0.38, 0.65, 0.06, 260.0, 0.65, 24.0, 0.35, 0.10},
      {"miniAMR",           0.70, 0.48, 0.08, 0.42, 0.60, 0.10, 220.0, 0.55, 45.0, 0.32, 0.15},
      {"Kripke",            0.76, 0.52, 0.03, 0.45, 0.68, 0.07, 290.0, 0.50, 38.0, 0.34, 0.10},
  };
}

AppProfile build_empire() {
  // Plasma physics with periodic field solves and heavy checkpoint I/O; the
  // paper's organic anomaly was degraded Lustre backend performance.
  return {"Empire", 0.78, 0.48, 0.05, 0.45, 0.60, 0.35, 120.0, 0.55, 60.0, 0.35, 0.12};
}

}  // namespace

const std::vector<AppProfile>& eclipse_applications() {
  static const std::vector<AppProfile> apps = build_eclipse();
  return apps;
}

const std::vector<AppProfile>& volta_applications() {
  static const std::vector<AppProfile> apps = build_volta();
  return apps;
}

const AppProfile& empire_application() {
  static const AppProfile app = build_empire();
  return app;
}

const AppProfile& application_by_name(const std::string& name) {
  for (const auto& app : eclipse_applications()) {
    if (app.name == name) return app;
  }
  for (const auto& app : volta_applications()) {
    if (app.name == name) return app;
  }
  if (empire_application().name == name) return empire_application();
  throw std::out_of_range("application_by_name: unknown application " + name);
}

}  // namespace prodigy::telemetry
