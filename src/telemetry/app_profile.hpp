// Application behaviour profiles for the simulated systems.
//
// Each profile captures, at a coarse level, how one of the paper's Table-1
// applications exercises a compute node: CPU intensity, memory footprint and
// growth, I/O and communication phases, and the period/shape of its compute
// phases.  A run samples per-run and per-node multipliers so repeated runs of
// the same input deck show the run-to-run variability production systems do.
#pragma once

#include "telemetry/resource_state.hpp"
#include "util/rng.hpp"

#include <string>
#include <vector>

namespace prodigy::telemetry {

struct AppProfile {
  std::string name;
  double cpu_intensity = 0.6;     // sustained user-CPU fraction at phase peak
  double mem_footprint = 0.3;     // steady-state fraction of RAM used
  double mem_ramp = 0.05;         // extra footprint accumulated over the run
  double cache_intensity = 0.3;   // cache traffic of the kernel
  double membw_intensity = 0.3;   // memory-bandwidth demand
  double io_intensity = 0.1;      // checkpoint/output I/O level
  double io_period_s = 120.0;     // seconds between I/O bursts
  double net_intensity = 0.2;     // halo-exchange/collective traffic
  double phase_period_s = 40.0;   // compute-phase period
  double phase_depth = 0.3;       // modulation depth of the phases
  double burstiness = 0.1;        // random activity spikes
};

/// Per-run random variation applied on top of a profile (input deck held
/// fixed; placement, OS noise, and network neighbours still vary).
struct RunVariation {
  double cpu_scale = 1.0;
  double mem_scale = 1.0;
  double rate_scale = 1.0;
  double phase_offset = 0.0;  // seconds
};

RunVariation sample_run_variation(util::Rng& rng, double spread = 0.06);

/// Resource state of a healthy node running `app` at second `t` of `duration`.
ResourceState state_at(const AppProfile& app, const RunVariation& variation,
                       double t, double duration, util::Rng& rng);

/// Eclipse applications (Table 1): real apps + ECP proxy suite.
const std::vector<AppProfile>& eclipse_applications();

/// Volta applications (Table 1): NAS suite, Mantevo suite, Kripke.
const std::vector<AppProfile>& volta_applications();

/// The Empire plasma-physics application of the §6.2 production experiment.
const AppProfile& empire_application();

/// Looks up any known profile by name; throws std::out_of_range if unknown.
const AppProfile& application_by_name(const std::string& name);

}  // namespace prodigy::telemetry
