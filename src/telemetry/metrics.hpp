// The LDMS metric catalog: which meminfo/vmstat/procstat metrics the
// simulated ldmsd samplers expose, and how each reading is synthesized from
// the node's latent ResourceState.
//
// The production deployment collects 806 metrics and keeps 156 node-level
// ones after dropping per-core metrics (paper §5.4.1).  We model the
// node-level metrics that carry the anomaly signatures plus enough
// bystanders that feature selection has real work to do.
#pragma once

#include "telemetry/resource_state.hpp"
#include "util/rng.hpp"

#include <string>
#include <vector>

namespace prodigy::telemetry {

enum class Sampler { Meminfo, Vmstat, Procstat, Dcgm };

std::string to_string(Sampler sampler);

/// Gauges report instantaneous values; counters accumulate since boot and
/// must be differenced by the preprocessing stage (paper §4.2.1).
enum class MetricKind { Gauge, Counter };

struct MetricSpec {
  std::string name;   // e.g. "MemFree"
  Sampler sampler;    // which ldmsd plugin reports it
  MetricKind kind;
  /// Index into the synthesis table (internal).
  int synth_id;
};

/// Full metric identifier as used throughout the paper, e.g. "MemFree::meminfo".
std::string full_metric_name(const MetricSpec& spec);

/// The fixed catalog, in canonical column order.
const std::vector<MetricSpec>& metric_catalog();

/// Catalog size (number of node-level metrics).
std::size_t metric_count();

/// Index of a metric by full name; throws std::out_of_range if absent.
std::size_t metric_index(const std::string& full_name);

/// Synthesizes the *instantaneous rate or gauge value* of every metric for
/// one second from the resource state.  For counters the generator
/// accumulates these rates into the reported running totals.
/// `node_ram_kb` scales the meminfo gauges (Eclipse 128 GB, Volta 64 GB).
std::vector<double> synthesize_rates(const ResourceState& state,
                                     double node_ram_kb, util::Rng& rng);

}  // namespace prodigy::telemetry
