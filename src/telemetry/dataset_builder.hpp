// Builds the Eclipse and Volta ground-truth collections of §5.2/§5.4.2:
// the Table-1 applications run with and without the Table-2 HPAS anomalies,
// on 4/8/16-node allocations, producing one labeled sample per (run, node).
//
// Paper-scale datasets are large (Eclipse: 24,566 node-samples), so the
// builder streams runs through a callback instead of materializing all raw
// telemetry; `scale` shrinks run counts proportionally for tests/benches.
#pragma once

#include "telemetry/generator.hpp"

#include <functional>

namespace prodigy::telemetry {

struct SystemSpec {
  std::string name;
  double node_ram_kb = 0.0;
  std::vector<AppProfile> apps;
  std::vector<std::size_t> node_counts;  // paper: 4, 8, 16 per input deck
};

SystemSpec eclipse_system();
SystemSpec volta_system();

struct DatasetSpec {
  SystemSpec system;
  /// Healthy / anomalous runs per application (anomalous runs cycle through
  /// the Table-2 configurations).
  std::size_t healthy_runs_per_app = 4;
  std::size_t anomalous_runs_per_app = 4;
  double duration_s = 300.0;
  double dropout = 0.003;
  std::uint64_t seed = 1;

  /// Approximate number of node-samples this spec will produce.
  std::size_t approx_samples() const;
};

/// Eclipse collection: anomalous-heavy (74% anomalous overall -> 90% anomaly
/// ratio in the 80% test split once the train split is capped at 10%).
/// scale = 1.0 approximates the paper's 24,566 samples.
DatasetSpec eclipse_dataset_spec(double scale = 0.05, double duration_s = 300.0);

/// Volta collection: healthy-heavy (~9% anomalous, matching 20,915 samples
/// with 18,980 healthy at scale = 1.0).
DatasetSpec volta_dataset_spec(double scale = 0.05, double duration_s = 300.0);

/// Generates every run in the spec, invoking `consume` once per job.
/// Runs are generated in a deterministic order derived from spec.seed.
void for_each_run(const DatasetSpec& spec,
                  const std::function<void(const JobTelemetry&)>& consume);

/// Total number of runs the spec describes.
std::size_t run_count(const DatasetSpec& spec);

}  // namespace prodigy::telemetry
