// Heterogeneous-node extension (paper §7 future work): GPU telemetry with
// different metrics and granularity than the CPU samplers.
//
// Models a DCGM-style sampler on accelerated compute nodes.  A GPU node's
// series concatenates the standard CPU catalog with the GPU catalog, so the
// same pipeline (preprocessing with per-column kinds, feature extraction,
// selection, VAE) trains one joint model per architecture.
#pragma once

#include "telemetry/app_profile.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/metrics.hpp"

#include <string>
#include <vector>

namespace prodigy::telemetry::gpu {

/// Latent per-second state of one GPU (aggregated over the node's devices).
struct GpuState {
  double util = 0.0;            // SM occupancy fraction [0, 1]
  double mem_util = 0.0;        // memory-controller utilization [0, 1]
  double fb_used_frac = 0.1;    // framebuffer occupancy fraction
  double pcie_tx_mb = 1.0;      // host->device traffic (MB/s)
  double pcie_rx_mb = 1.0;      // device->host traffic (MB/s)
  double nvlink_mb = 0.0;       // peer traffic (MB/s)
  double power_w = 60.0;        // board power draw
  double temperature_c = 35.0;  // die temperature
  double sm_clock_mhz = 1400.0; // current SM clock (throttling lowers it)
  double xid_error_rate = 0.0;  // driver error events per second
};

/// The GPU metric catalog (reuses MetricSpec; sampler = Dcgm).
const std::vector<MetricSpec>& gpu_metric_catalog();
std::size_t gpu_metric_count();

/// Rates/gauges for one second of GPU state; `fb_total_mb` scales the
/// framebuffer gauges (e.g. 40960 for a 40 GB device).
std::vector<double> synthesize_gpu_rates(const GpuState& state, double fb_total_mb,
                                         util::Rng& rng);

/// A GPU application: host-side behaviour plus device knobs.
struct GpuAppProfile {
  std::string name;
  AppProfile host;               // CPU-side profile (launch/communication)
  double gpu_intensity = 0.85;   // sustained SM occupancy at phase peak
  double fb_footprint = 0.5;     // framebuffer fraction in use
  double pcie_intensity = 0.4;   // staging traffic level
  double kernel_period_s = 12.0; // kernel-burst periodicity
};

/// GPU builds of representative applications.
const std::vector<GpuAppProfile>& gpu_applications();
const GpuAppProfile& gpu_application_by_name(const std::string& name);

/// GPU-side anomalies (no HPAS equivalent exists; these model the failure
/// modes GPU operators chase: device memory leaks and thermal throttling).
enum class GpuAnomalyKind { None, GpuMemleak, ThermalThrottle };
std::string to_string(GpuAnomalyKind kind);

struct GpuRunConfig {
  GpuAppProfile app;
  std::int64_t job_id = 1;
  std::size_t num_nodes = 4;
  double duration_s = 300.0;
  double node_ram_kb = 128.0 * 1024.0 * 1024.0;
  double fb_total_mb = 40960.0;  // 40 GB class device
  std::uint64_t seed = 42;
  double dropout = 0.003;
  GpuAnomalyKind anomaly = GpuAnomalyKind::None;
  std::vector<std::size_t> anomalous_nodes;  // empty = all when anomalous
  std::int64_t first_component_id = 0;
};

/// Column names of a heterogeneous node frame: CPU catalog then GPU catalog.
std::vector<std::string> heterogeneous_metric_names();
/// Matching per-column kinds (for preprocessing).
std::vector<MetricKind> heterogeneous_metric_kinds();

/// Generates a GPU job; each node's values matrix is
/// (T x (metric_count() + gpu_metric_count())) over the heterogeneous columns.
JobTelemetry generate_gpu_run(const GpuRunConfig& config);

}  // namespace prodigy::telemetry::gpu
