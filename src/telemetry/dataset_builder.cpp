#include "telemetry/dataset_builder.hpp"

#include <algorithm>
#include <cmath>

namespace prodigy::telemetry {

SystemSpec eclipse_system() {
  return {"Eclipse", 128.0 * 1024.0 * 1024.0, eclipse_applications(), {4, 8, 16}};
}

SystemSpec volta_system() {
  return {"Volta", 64.0 * 1024.0 * 1024.0, volta_applications(), {4, 8, 16}};
}

std::size_t DatasetSpec::approx_samples() const {
  // Node counts cycle 4, 8, 16 -> mean 28/3 nodes per run.
  double mean_nodes = 0.0;
  for (const auto n : system.node_counts) mean_nodes += static_cast<double>(n);
  mean_nodes /= static_cast<double>(std::max<std::size_t>(1, system.node_counts.size()));
  return static_cast<std::size_t>(
      static_cast<double>((healthy_runs_per_app + anomalous_runs_per_app) *
                          system.apps.size()) *
      mean_nodes);
}

namespace {

std::size_t scaled(double base, double scale) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(base * scale)));
}

}  // namespace

DatasetSpec eclipse_dataset_spec(double scale, double duration_s) {
  DatasetSpec spec;
  spec.system = eclipse_system();
  // Paper: 24,566 samples, 6,325 healthy.  With 6 apps and a mean of 9.33
  // nodes/run that is ~113 healthy and ~326 anomalous runs per application.
  spec.healthy_runs_per_app = scaled(113.0, scale);
  spec.anomalous_runs_per_app = scaled(326.0, scale);
  spec.duration_s = duration_s;
  spec.seed = 0xec1195e;
  return spec;
}

DatasetSpec volta_dataset_spec(double scale, double duration_s) {
  DatasetSpec spec;
  spec.system = volta_system();
  // Paper: 20,915 samples, 18,980 healthy, 11 applications.
  spec.healthy_runs_per_app = scaled(185.0, scale);
  spec.anomalous_runs_per_app = scaled(19.0, scale);
  spec.duration_s = duration_s;
  spec.seed = 0x0117a;
  return spec;
}

std::size_t run_count(const DatasetSpec& spec) {
  return (spec.healthy_runs_per_app + spec.anomalous_runs_per_app) *
         spec.system.apps.size();
}

void for_each_run(const DatasetSpec& spec,
                  const std::function<void(const JobTelemetry&)>& consume) {
  const auto anomalies = hpas::table2_configurations();
  std::int64_t job_id = 1000;
  std::int64_t component_base = 1;
  util::Rng seed_rng(spec.seed);
  // Global cycle over the Table-2 configurations so every scale mixes all
  // anomaly types (a per-app cycle would give each app a single type when
  // anomalous_runs_per_app < 10).
  std::size_t anomaly_cursor = 0;

  for (const auto& app : spec.system.apps) {
    const std::size_t total_runs =
        spec.healthy_runs_per_app + spec.anomalous_runs_per_app;
    for (std::size_t run = 0; run < total_runs; ++run) {
      const bool anomalous = run >= spec.healthy_runs_per_app;
      RunConfig config;
      config.app = app;
      config.job_id = job_id++;
      // Node counts are drawn independently of the healthy/anomalous order so
      // class sample ratios stay stable at any scale.
      config.num_nodes = spec.system.node_counts[seed_rng.uniform_index(
          spec.system.node_counts.size())];
      config.duration_s = spec.duration_s;
      config.node_ram_kb = spec.system.node_ram_kb;
      config.dropout = spec.dropout;
      config.seed = seed_rng();
      config.first_component_id = component_base;
      if (anomalous) {
        config.anomaly = anomalies[anomaly_cursor++ % anomalies.size()];
        // Same input deck, slower execution: contention stretches the run.
        config.duration_s *= hpas::expected_slowdown(config.anomaly);
      }
      component_base += static_cast<std::int64_t>(config.num_nodes);
      consume(generate_run(config));
    }
  }
}

}  // namespace prodigy::telemetry
