#include "telemetry/generator.hpp"

#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace prodigy::telemetry {

namespace {

bool node_is_anomalous(const RunConfig& config, std::size_t node) {
  if (!config.anomaly.is_anomalous()) return false;
  if (config.anomalous_nodes.empty()) return true;
  return std::find(config.anomalous_nodes.begin(), config.anomalous_nodes.end(),
                   node) != config.anomalous_nodes.end();
}

/// Stretches and stalls I/O to model a degraded Lustre backend.  Metadata
/// operations and buffered writeback degrade continuously; checkpoint bursts
/// stall outright.
void apply_io_degradation(double degradation, ResourceState& state) {
  if (degradation <= 0.0) return;
  // Background effect: every filesystem touch is slower.
  state.cpu_iowait += 0.06 * degradation;
  state.blocked_procs += 1.5 * degradation;
  state.io_rate *= 1.0 - 0.25 * degradation;
  state.page_fault_rate *= 1.0 - 0.15 * degradation;
  state.ctx_switch_rate *= 1.0 - 0.10 * degradation;

  const bool in_burst = state.cpu_iowait > 0.07 || state.io_rate > 5.0;
  if (in_burst) {
    // Checkpoint phases: throughput collapses, compute starves behind I/O.
    state.cpu_iowait += 0.35 * degradation;
    state.io_rate *= 1.0 - 0.5 * degradation;
    state.blocked_procs += 4.0 * degradation;
    state.cpu_user *= 1.0 - 0.3 * degradation;
    state.major_fault_rate += 5.0 * degradation;
  }
}

/// The drifting new normal: with progress in [0, 1] and `drift` the relative
/// end-of-run magnitude, the node slides toward a heavier operating point —
/// more resident memory, hotter caches, more scheduling churn — the way a
/// fleet's baseline creeps after a workload-mix or firmware change.  This is
/// NOT an anomaly: every perturbed dimension stays well inside plausible
/// healthy operation; it just no longer matches what a frozen model trained
/// on day-one telemetry considers normal.
void apply_baseline_drift(double drift, double progress, ResourceState& state) {
  if (drift <= 0.0) return;
  const double d = drift * progress;
  state.mem_used_frac = std::min(0.95, state.mem_used_frac * (1.0 + d));
  state.mem_anon_frac = std::min(0.85, state.mem_anon_frac * (1.0 + d));
  state.mem_cached_frac = std::min(0.9, state.mem_cached_frac * (1.0 + 0.5 * d));
  state.cpu_user = std::min(0.95, state.cpu_user * (1.0 + 0.4 * d));
  state.cache_pressure *= 1.0 + 0.6 * d;
  state.membw_pressure *= 1.0 + 0.6 * d;
  state.page_fault_rate *= 1.0 + 0.5 * d;
  state.ctx_switch_rate *= 1.0 + 0.3 * d;
  state.interrupt_rate *= 1.0 + 0.2 * d;
  state.net_rate *= 1.0 + 0.4 * d;
}

}  // namespace

JobTelemetry generate_run(const RunConfig& config) {
  const auto& catalog = metric_catalog();
  const auto timestamps = static_cast<std::size_t>(std::max(1.0, config.duration_s));
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

  JobTelemetry job;
  job.job_id = config.job_id;
  job.app = config.app.name;
  job.nodes.reserve(config.num_nodes);

  util::Rng job_rng(config.seed ^ static_cast<std::uint64_t>(config.job_id) * 0x9e37ULL);
  const RunVariation run_variation = sample_run_variation(job_rng);

  for (std::size_t node = 0; node < config.num_nodes; ++node) {
    util::Rng rng = job_rng.fork();
    NodeSeries series;
    series.job_id = config.job_id;
    series.component_id = config.first_component_id + static_cast<std::int64_t>(node);
    series.app = config.app.name;
    series.values = tensor::Matrix(timestamps, catalog.size());

    const bool anomalous = node_is_anomalous(config, node);
    const bool organic = config.io_degradation > 0.0;
    series.label = (anomalous || organic) ? 1 : 0;
    series.anomaly = anomalous ? to_string(config.anomaly.kind)
                               : (organic ? "io_degradation" : "none");

    std::unique_ptr<hpas::AnomalyInjector> injector;
    if (anomalous) injector = hpas::make_injector(config.anomaly, rng);

    // Per-node variation on top of the shared run variation (placement noise).
    RunVariation node_variation = run_variation;
    node_variation.cpu_scale *= std::max(0.6, 1.0 + 0.03 * rng.gaussian());
    node_variation.rate_scale *= std::max(0.6, 1.0 + 0.03 * rng.gaussian());
    node_variation.phase_offset += rng.uniform(0.0, 3.0);

    // Counters accumulate from a since-boot offset, like real /proc counters.
    std::vector<double> counters(catalog.size(), 0.0);
    for (std::size_t m = 0; m < catalog.size(); ++m) {
      if (catalog[m].kind == MetricKind::Counter) {
        counters[m] = rng.uniform(1e6, 5e8);
      }
    }

    const double anomaly_start =
        std::clamp(config.anomaly_start_frac, 0.0, 1.0 - 1e-9);
    for (std::size_t t = 0; t < timestamps; ++t) {
      const double t_frac = static_cast<double>(t) / config.duration_s;
      ResourceState state = state_at(config.app, node_variation,
                                     static_cast<double>(t), config.duration_s, rng);
      // Drift first (it is the new healthy baseline), then anomalies perturb
      // on top of it — the overlapping-anomaly scenario.
      apply_baseline_drift(config.baseline_drift, t_frac, state);
      if (injector && t_frac >= anomaly_start) {
        // Re-normalize progress so a late-starting anomaly still traverses
        // its full intensity ramp over the time it is active.
        injector->perturb((t_frac - anomaly_start) / (1.0 - anomaly_start),
                          state, rng);
      }
      apply_io_degradation(config.io_degradation, state);

      const auto rates = synthesize_rates(state, config.node_ram_kb, rng);
      for (std::size_t m = 0; m < catalog.size(); ++m) {
        double reported;
        if (catalog[m].kind == MetricKind::Counter) {
          counters[m] += std::max(0.0, rates[m]);
          reported = counters[m];
        } else {
          reported = rates[m];
        }
        series.values(t, m) =
            rng.bernoulli(config.dropout) ? kNaN : reported;
      }
    }
    job.nodes.push_back(std::move(series));
  }
  return job;
}

}  // namespace prodigy::telemetry
