// The latent per-node, per-second resource state of the simulated machine.
//
// Application profiles map execution phase -> ResourceState; HPAS anomaly
// injectors perturb the state; the metric catalog then synthesizes LDMS-style
// sampler readings (meminfo/vmstat/procstat) from it.  Modeling anomalies at
// this level makes their metric signatures coherent across samplers (e.g. a
// memory leak simultaneously shrinks MemFree, grows AnonPages, and eventually
// drives swap/page-rotation activity), which is what the real HPAS anomalies
// do to a real kernel.
#pragma once

namespace prodigy::telemetry {

struct ResourceState {
  // CPU time fractions for this second; the remainder is idle.
  double cpu_user = 0.05;
  double cpu_system = 0.02;
  double cpu_iowait = 0.0;

  // Memory occupancy as fractions of node RAM.
  double mem_used_frac = 0.2;   // total in-use
  double mem_anon_frac = 0.08;  // anonymous (heap) portion
  double mem_cached_frac = 0.15;

  // Paging / reclaim activity (events per second, arbitrary but consistent units).
  double page_fault_rate = 200.0;
  double major_fault_rate = 0.0;
  double swap_rate = 0.0;        // pswpin+pswpout pressure
  double reclaim_rate = 0.0;     // kswapd scan/steal pressure

  // Contention proxies.
  double cache_pressure = 0.1;   // L1..L3 contention in [0, ~2]
  double membw_pressure = 0.1;   // memory-bandwidth contention in [0, ~2]

  // I/O and network activity (MB/s-ish).
  double io_rate = 1.0;
  double net_rate = 0.5;

  // Scheduling activity.
  double ctx_switch_rate = 1500.0;
  double interrupt_rate = 900.0;
  double runnable_procs = 2.0;
  double blocked_procs = 0.0;
};

}  // namespace prodigy::telemetry
