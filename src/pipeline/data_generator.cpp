#include "pipeline/data_generator.hpp"

namespace prodigy::pipeline {

PreparedNode DataGenerator::prepare_node(const telemetry::NodeSeries& node) const {
  PreparedNode prepared;
  prepared.meta.job_id = node.job_id;
  prepared.meta.component_id = node.component_id;
  prepared.meta.app = node.app;
  prepared.meta.anomaly = node.anomaly;
  prepared.label = node.label;
  prepared.values = preprocess_node(node.values, options_);
  return prepared;
}

std::vector<PreparedNode> DataGenerator::prepare(
    const telemetry::JobTelemetry& job) const {
  std::vector<PreparedNode> prepared;
  prepared.reserve(job.nodes.size());
  for (const auto& node : job.nodes) {
    prepared.push_back(prepare_node(node));
  }
  return prepared;
}

}  // namespace prodigy::pipeline
