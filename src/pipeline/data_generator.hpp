// The paper's DataGenerator class (Fig. 3): takes raw sampler data for a
// job, applies preprocessing per compute node, and hands prepared
// (job_id, component_id, timestamp)-indexed frames to the DataPipeline.
#pragma once

#include "features/feature_matrix.hpp"
#include "pipeline/preprocess.hpp"
#include "telemetry/generator.hpp"

#include <vector>

namespace prodigy::pipeline {

/// One preprocessed compute-node frame, ready for feature extraction.
struct PreparedNode {
  features::SampleMeta meta;
  int label = 0;
  tensor::Matrix values;  // (T' x M), NaN-free, counters differenced
};

class DataGenerator {
 public:
  explicit DataGenerator(PreprocessOptions options = {}) : options_(options) {}

  const PreprocessOptions& options() const noexcept { return options_; }

  /// Preprocesses every node of a job.
  std::vector<PreparedNode> prepare(const telemetry::JobTelemetry& job) const;

  /// Preprocesses a single node series.
  PreparedNode prepare_node(const telemetry::NodeSeries& node) const;

 private:
  PreprocessOptions options_;
};

}  // namespace prodigy::pipeline
