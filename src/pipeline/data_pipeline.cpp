#include "pipeline/data_pipeline.hpp"

#include "telemetry/metrics.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

#include <stdexcept>

namespace prodigy::pipeline {

std::vector<std::string> full_feature_names() {
  std::vector<std::string> metric_names;
  metric_names.reserve(telemetry::metric_count());
  for (const auto& spec : telemetry::metric_catalog()) {
    metric_names.push_back(telemetry::full_metric_name(spec));
  }
  return features::feature_column_names(metric_names);
}

std::vector<double> DataPipeline::extract(const PreparedNode& node) {
  return features::extract_node_features(node.values);
}

features::FeatureDataset DataPipeline::build_from_jobs(
    const std::vector<telemetry::JobTelemetry>& jobs,
    const PreprocessOptions& preprocess, util::ThreadPool* pool) {
  static const std::vector<telemetry::MetricKind> kinds = [] {
    std::vector<telemetry::MetricKind> out;
    for (const auto& spec : telemetry::metric_catalog()) out.push_back(spec.kind);
    return out;
  }();
  static const std::vector<std::string> metric_names = [] {
    std::vector<std::string> out;
    for (const auto& spec : telemetry::metric_catalog()) {
      out.push_back(telemetry::full_metric_name(spec));
    }
    return out;
  }();
  return build_from_jobs(jobs, metric_names, kinds, preprocess, pool);
}

features::FeatureDataset DataPipeline::build_from_jobs(
    const std::vector<telemetry::JobTelemetry>& jobs,
    const std::vector<std::string>& metric_names,
    const std::vector<telemetry::MetricKind>& kinds,
    const PreprocessOptions& preprocess, util::ThreadPool* pool) {
  if (metric_names.size() != kinds.size()) {
    throw std::invalid_argument("build_from_jobs: names/kinds size mismatch");
  }
  features::FeatureDataset dataset;
  dataset.feature_names = features::feature_column_names(metric_names);

  std::vector<const telemetry::NodeSeries*> node_list;
  for (const auto& job : jobs) {
    for (const auto& node : job.nodes) node_list.push_back(&node);
  }
  const std::size_t total_nodes = node_list.size();
  util::MetricsRegistry::global()
      .counter("prodigy_pipeline_nodes_processed_total")
      .increment(total_nodes);
  dataset.X = tensor::Matrix(total_nodes, dataset.feature_names.size());
  dataset.labels.resize(total_nodes);
  dataset.meta.resize(total_nodes);

  // Each row is preprocessed + extracted independently and written by index,
  // so fanning out over the pool keeps the dataset bit-identical to a serial
  // build no matter how many workers run.
  util::parallel_for(
      pool != nullptr ? *pool : util::ThreadPool::global(), 0, total_nodes,
      [&](std::size_t row) {
        const telemetry::NodeSeries& node = *node_list[row];
        if (node.values.cols() != metric_names.size()) {
          throw std::invalid_argument("build_from_jobs: node frame width " +
                                      std::to_string(node.values.cols()) +
                                      " != " + std::to_string(metric_names.size()) +
                                      " metric columns");
        }
        const tensor::Matrix prepared =
            preprocess_node(node.values, kinds, preprocess);
        dataset.X.set_row(row, features::extract_node_features(prepared));
        dataset.labels[row] = node.label;
        features::SampleMeta meta;
        meta.job_id = node.job_id;
        meta.component_id = node.component_id;
        meta.app = node.app;
        meta.anomaly = node.anomaly;
        dataset.meta[row] = std::move(meta);
      });
  return dataset;
}

features::FeatureDataset DataPipeline::build_dataset(
    const telemetry::DatasetSpec& spec, const PreprocessOptions& preprocess) {
  features::FeatureDataset dataset;
  dataset.feature_names = full_feature_names();
  // Node counts vary per run; over-allocate slightly so the grow path below
  // stays a rare fallback.
  const std::size_t capacity = spec.approx_samples() + spec.approx_samples() / 8 + 64;
  dataset.X = tensor::Matrix(capacity, dataset.feature_names.size());
  dataset.labels.reserve(capacity);
  dataset.meta.reserve(capacity);

  const DataGenerator generator(preprocess);
  std::size_t row = 0;
  std::size_t runs_done = 0;
  const std::size_t total_runs = telemetry::run_count(spec);

  telemetry::for_each_run(spec, [&](const telemetry::JobTelemetry& job) {
    for (const auto& node : job.nodes) {
      const PreparedNode prepared = generator.prepare_node(node);
      const auto features = extract(prepared);
      if (row >= dataset.X.rows()) {
        // approx_samples underestimated; grow by one row.
        tensor::Matrix grown(dataset.X.rows() + 1, dataset.X.cols());
        std::copy(dataset.X.data(), dataset.X.data() + dataset.X.size(), grown.data());
        dataset.X = std::move(grown);
      }
      dataset.X.set_row(row, features);
      dataset.labels.push_back(prepared.label);
      dataset.meta.push_back(prepared.meta);
      ++row;
    }
    ++runs_done;
    if (runs_done % 50 == 0) {
      util::log_info("build_dataset[", spec.system.name, "]: ", runs_done, "/",
                     total_runs, " runs");
    }
  });

  if (row < dataset.X.rows()) dataset.X = dataset.X.slice_rows(0, row);
  return dataset;
}

}  // namespace prodigy::pipeline
