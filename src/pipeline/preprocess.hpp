// Raw-telemetry preprocessing (paper §4.2.1, §5.4.1):
//  * linear interpolation over samples lost during collection,
//  * first-differencing of accumulated counters so models see rates,
//  * trimming the first/last 60 s (initialization/termination phases).
#pragma once

#include "telemetry/metrics.hpp"
#include "tensor/matrix.hpp"

#include <span>
#include <vector>

namespace prodigy::pipeline {

struct PreprocessOptions {
  double trim_seconds = 60.0;  // dropped from each end, clamped to fit
  bool interpolate = true;
  bool diff_counters = true;
  /// Minimum timestamps that must survive trimming.
  std::size_t min_timestamps = 16;
};

/// Fills NaN gaps by linear interpolation between finite neighbours;
/// leading/trailing gaps are filled with the nearest finite value.
/// An all-NaN series becomes all zeros.
void linear_interpolate(std::span<double> series);

/// First difference (x[t] - x[t-1]) with the same length as the input
/// (element 0 duplicates element 1's diff so lengths stay aligned).
std::vector<double> counter_to_rate(std::span<const double> series);

/// Full node preprocessing with explicit per-column kinds (heterogeneous
/// frames, e.g. CPU + GPU catalogs concatenated).
tensor::Matrix preprocess_node(const tensor::Matrix& raw,
                               std::span<const telemetry::MetricKind> kinds,
                               const PreprocessOptions& options);

/// Full node preprocessing over the standard metric catalog.  `raw` is
/// (T x M) in catalog column order; returns the cleaned (T' x M) matrix.
tensor::Matrix preprocess_node(const tensor::Matrix& raw,
                               const PreprocessOptions& options);

}  // namespace prodigy::pipeline
