#include "pipeline/preprocess.hpp"

#include "features/series_preprocess.hpp"
#include "telemetry/metrics.hpp"
#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace prodigy::pipeline {

// The cleaning primitives are shared with the streaming incremental
// extractor's exact-fallback path, which must reproduce this pipeline's
// output bit for bit; the single definition lives in features/.
void linear_interpolate(std::span<double> series) {
  features::linear_interpolate(series);
}

std::vector<double> counter_to_rate(std::span<const double> series) {
  return features::counter_to_rate(series);
}

tensor::Matrix preprocess_node(const tensor::Matrix& raw,
                               const PreprocessOptions& options) {
  static const std::vector<telemetry::MetricKind> kinds = [] {
    std::vector<telemetry::MetricKind> out;
    for (const auto& spec : telemetry::metric_catalog()) out.push_back(spec.kind);
    return out;
  }();
  return preprocess_node(raw, kinds, options);
}

tensor::Matrix preprocess_node(const tensor::Matrix& raw,
                               std::span<const telemetry::MetricKind> kinds,
                               const PreprocessOptions& options) {
  util::StageTimer stage("pipeline.preprocess");
  const std::size_t timestamps = raw.rows();
  const std::size_t metrics = raw.cols();

  // Work column-by-column: interpolate, then difference counters.
  tensor::Matrix cleaned(timestamps, metrics);
  for (std::size_t m = 0; m < metrics; ++m) {
    auto series = raw.column(m);
    if (options.interpolate) linear_interpolate(series);
    const bool is_counter =
        m < kinds.size() && kinds[m] == telemetry::MetricKind::Counter;
    if (options.diff_counters && is_counter) {
      const auto rates = counter_to_rate(series);
      cleaned.set_column(m, rates);
    } else {
      cleaned.set_column(m, series);
    }
  }

  // Trim initialization/termination phases, keeping at least min_timestamps.
  auto trim = static_cast<std::size_t>(std::max(0.0, options.trim_seconds));
  const std::size_t min_keep = std::max<std::size_t>(1, options.min_timestamps);
  while (trim > 0 && timestamps < 2 * trim + min_keep) trim /= 2;
  const std::size_t kept = timestamps - 2 * trim;
  return cleaned.slice_rows(trim, kept);
}

}  // namespace prodigy::pipeline
