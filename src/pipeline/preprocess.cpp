#include "pipeline/preprocess.hpp"

#include "telemetry/metrics.hpp"
#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace prodigy::pipeline {

void linear_interpolate(std::span<double> series) {
  const std::size_t n = series.size();
  std::size_t i = 0;
  std::ptrdiff_t last_finite = -1;
  while (i < n) {
    if (std::isfinite(series[i])) {
      if (last_finite >= 0 && static_cast<std::size_t>(last_finite) + 1 < i) {
        // Interpolate the gap (last_finite, i).
        const double lo = series[static_cast<std::size_t>(last_finite)];
        const double hi = series[i];
        const double span = static_cast<double>(i) - static_cast<double>(last_finite);
        for (std::size_t g = static_cast<std::size_t>(last_finite) + 1; g < i; ++g) {
          const double t = (static_cast<double>(g) - static_cast<double>(last_finite)) / span;
          series[g] = lo + (hi - lo) * t;
        }
      } else if (last_finite < 0 && i > 0) {
        // Leading gap: back-fill with first finite value.
        for (std::size_t g = 0; g < i; ++g) series[g] = series[i];
      }
      last_finite = static_cast<std::ptrdiff_t>(i);
    }
    ++i;
  }
  if (last_finite < 0) {
    std::fill(series.begin(), series.end(), 0.0);
  } else if (static_cast<std::size_t>(last_finite) + 1 < n) {
    // Trailing gap: forward-fill.
    const double value = series[static_cast<std::size_t>(last_finite)];
    for (std::size_t g = static_cast<std::size_t>(last_finite) + 1; g < n; ++g) {
      series[g] = value;
    }
  }
}

std::vector<double> counter_to_rate(std::span<const double> series) {
  std::vector<double> rates(series.size(), 0.0);
  if (series.size() < 2) return rates;
  for (std::size_t t = 1; t < series.size(); ++t) {
    rates[t] = series[t] - series[t - 1];
  }
  rates[0] = rates[1];  // keep length aligned with the gauges
  return rates;
}

tensor::Matrix preprocess_node(const tensor::Matrix& raw,
                               const PreprocessOptions& options) {
  static const std::vector<telemetry::MetricKind> kinds = [] {
    std::vector<telemetry::MetricKind> out;
    for (const auto& spec : telemetry::metric_catalog()) out.push_back(spec.kind);
    return out;
  }();
  return preprocess_node(raw, kinds, options);
}

tensor::Matrix preprocess_node(const tensor::Matrix& raw,
                               std::span<const telemetry::MetricKind> kinds,
                               const PreprocessOptions& options) {
  util::StageTimer stage("pipeline.preprocess");
  const std::size_t timestamps = raw.rows();
  const std::size_t metrics = raw.cols();

  // Work column-by-column: interpolate, then difference counters.
  tensor::Matrix cleaned(timestamps, metrics);
  for (std::size_t m = 0; m < metrics; ++m) {
    auto series = raw.column(m);
    if (options.interpolate) linear_interpolate(series);
    const bool is_counter =
        m < kinds.size() && kinds[m] == telemetry::MetricKind::Counter;
    if (options.diff_counters && is_counter) {
      const auto rates = counter_to_rate(series);
      cleaned.set_column(m, rates);
    } else {
      cleaned.set_column(m, series);
    }
  }

  // Trim initialization/termination phases, keeping at least min_timestamps.
  auto trim = static_cast<std::size_t>(std::max(0.0, options.trim_seconds));
  const std::size_t min_keep = std::max<std::size_t>(1, options.min_timestamps);
  while (trim > 0 && timestamps < 2 * trim + min_keep) trim /= 2;
  const std::size_t kept = timestamps - 2 * trim;
  return cleaned.slice_rows(trim, kept);
}

}  // namespace prodigy::pipeline
