#include "pipeline/scaler.hpp"

#include "util/logging.hpp"
#include "util/metrics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace prodigy::pipeline {

std::string to_string(ScalerKind kind) {
  return kind == ScalerKind::MinMax ? "minmax" : "standard";
}

ScalerKind scaler_kind_from_string(const std::string& name) {
  if (name == "minmax") return ScalerKind::MinMax;
  if (name == "standard") return ScalerKind::Standard;
  throw std::invalid_argument("unknown scaler kind: " + name);
}

void Scaler::fit(const tensor::Matrix& X) {
  if (X.rows() == 0) throw std::invalid_argument("Scaler::fit: empty matrix");
  offset_.assign(X.cols(), 0.0);
  scale_.assign(X.cols(), 1.0);
  // Fit statistics over finite entries only: one NaN sensor reading must not
  // poison a column's offset/scale (and with them every downstream score).
  std::size_t nonfinite_total = 0;
  for (std::size_t c = 0; c < X.cols(); ++c) {
    const auto column = X.column(c);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    double sum = 0.0;
    std::size_t finite = 0;
    for (const double v : column) {
      if (!std::isfinite(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
      ++finite;
    }
    nonfinite_total += column.size() - finite;
    if (finite == 0) {
      throw std::invalid_argument(
          "Scaler::fit: column " + std::to_string(c) +
          " has no finite values; drop it or fix the upstream telemetry");
    }
    if (kind_ == ScalerKind::MinMax) {
      offset_[c] = lo;
      scale_[c] = hi > lo ? hi - lo : 1.0;
    } else {
      const double mean = sum / static_cast<double>(finite);
      double ss = 0.0;
      for (const double v : column) {
        if (!std::isfinite(v)) continue;
        ss += (v - mean) * (v - mean);
      }
      const double sd = std::sqrt(ss / static_cast<double>(finite));
      offset_[c] = mean;
      scale_[c] = sd > 0.0 ? sd : 1.0;
    }
  }
  if (nonfinite_total > 0) {
    util::MetricsRegistry::global()
        .counter("prodigy_scaler_nonfinite_skipped_total")
        .increment(nonfinite_total);
    util::log_warn("Scaler::fit: skipped ", nonfinite_total,
                   " non-finite entries while fitting ", X.cols(), " columns");
  }
}

tensor::Matrix Scaler::transform(const tensor::Matrix& X) const {
  if (!fitted()) throw std::logic_error("Scaler::transform before fit");
  if (X.cols() != offset_.size()) {
    throw std::invalid_argument("Scaler::transform: column count mismatch");
  }
  tensor::Matrix out(X.rows(), X.cols());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const double* in_row = X.data() + r * X.cols();
    double* out_row = out.data() + r * X.cols();
    for (std::size_t c = 0; c < X.cols(); ++c) {
      out_row[c] = (in_row[c] - offset_[c]) / scale_[c];
    }
  }
  return out;
}

tensor::Matrix Scaler::fit_transform(const tensor::Matrix& X) {
  fit(X);
  return transform(X);
}

tensor::Matrix Scaler::inverse_transform(const tensor::Matrix& X) const {
  if (!fitted()) throw std::logic_error("Scaler::inverse_transform before fit");
  if (X.cols() != offset_.size()) {
    throw std::invalid_argument("Scaler::inverse_transform: column count mismatch");
  }
  tensor::Matrix out(X.rows(), X.cols());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const double* in_row = X.data() + r * X.cols();
    double* out_row = out.data() + r * X.cols();
    for (std::size_t c = 0; c < X.cols(); ++c) {
      out_row[c] = in_row[c] * scale_[c] + offset_[c];
    }
  }
  return out;
}

namespace {
constexpr std::uint64_t kScalerMagic = 0x50524f5343414c45ULL;  // "PROSCALE"
}

void Scaler::save(util::BinaryWriter& writer) const {
  writer.write_magic(kScalerMagic, 1);
  writer.write_string(to_string(kind_));
  writer.write_f64_vector(offset_);
  writer.write_f64_vector(scale_);
}

Scaler Scaler::load(util::BinaryReader& reader) {
  reader.expect_magic(kScalerMagic, 1);
  Scaler scaler(scaler_kind_from_string(reader.read_string()));
  scaler.offset_ = reader.read_f64_vector();
  scaler.scale_ = reader.read_f64_vector();
  if (scaler.offset_.size() != scaler.scale_.size()) {
    throw std::runtime_error("Scaler::load: corrupt buffers");
  }
  return scaler;
}

}  // namespace prodigy::pipeline
