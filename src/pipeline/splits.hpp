// Train/test splitting strategies (paper §5.4.2):
//  * the Prodigy split: 20-80 stratified, then the training side's anomaly
//    ratio is capped (10% in the paper, motivated by the observed 2-7%
//    outlier rate on Eclipse) by moving excess anomalous samples to test;
//  * stratified k-fold for the Figure-5 cross-validated comparison.
#pragma once

#include "util/rng.hpp"

#include <cstdint>
#include <vector>

namespace prodigy::pipeline {

struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified train/test split preserving the class distribution.
SplitIndices stratified_split(const std::vector<int>& labels, double train_fraction,
                              std::uint64_t seed);

/// The paper's split: stratified `train_fraction` split, then anomalous
/// training samples beyond `train_anomaly_ratio` are moved to the test side.
SplitIndices prodigy_split(const std::vector<int>& labels, double train_fraction,
                           double train_anomaly_ratio, std::uint64_t seed);

/// Stratified k-fold; fold i's test set is the i-th stratified slice.
std::vector<SplitIndices> stratified_kfold(const std::vector<int>& labels,
                                           std::size_t folds, std::uint64_t seed);

}  // namespace prodigy::pipeline
