// Column-wise feature scaling (the paper's Scaler module): fit on the
// training set, transform train/test identically, persist with the model so
// the production AnomalyDetector applies the exact training-time transform.
#pragma once

#include "tensor/matrix.hpp"
#include "util/serialize.hpp"

#include <string>
#include <vector>

namespace prodigy::pipeline {

enum class ScalerKind { MinMax, Standard };

std::string to_string(ScalerKind kind);
ScalerKind scaler_kind_from_string(const std::string& name);

class Scaler {
 public:
  explicit Scaler(ScalerKind kind = ScalerKind::MinMax) : kind_(kind) {}

  ScalerKind kind() const noexcept { return kind_; }
  bool fitted() const noexcept { return !offset_.empty(); }
  std::size_t feature_count() const noexcept { return offset_.size(); }

  void fit(const tensor::Matrix& X);
  tensor::Matrix transform(const tensor::Matrix& X) const;
  tensor::Matrix fit_transform(const tensor::Matrix& X);
  tensor::Matrix inverse_transform(const tensor::Matrix& X) const;

  void save(util::BinaryWriter& writer) const;
  static Scaler load(util::BinaryReader& reader);

 private:
  ScalerKind kind_;
  // transform: (x - offset) / scale  (scale fixed to 1 for constant columns).
  std::vector<double> offset_;
  std::vector<double> scale_;
};

}  // namespace prodigy::pipeline
