// The paper's DataPipeline class (Fig. 3): FeatureExtractor + Scaler, the
// common operations shared by every ML model before training and evaluation.
// Also hosts the streaming dataset builders used by the experiments.
#pragma once

#include "features/chi_square.hpp"
#include "features/feature_matrix.hpp"
#include "pipeline/data_generator.hpp"
#include "pipeline/scaler.hpp"
#include "telemetry/dataset_builder.hpp"
#include "util/thread_pool.hpp"

namespace prodigy::pipeline {

class DataPipeline {
 public:
  explicit DataPipeline(PreprocessOptions preprocess = {},
                        ScalerKind scaler_kind = ScalerKind::MinMax)
      : generator_(preprocess), scaler_(scaler_kind) {}

  /// FeatureExtractor: prepared node frame -> one feature row.
  static std::vector<double> extract(const PreparedNode& node);

  /// Builds the labeled feature dataset for a full telemetry collection,
  /// streaming runs so raw telemetry never accumulates (paper-scale safe).
  static features::FeatureDataset build_dataset(const telemetry::DatasetSpec& spec,
                                                const PreprocessOptions& preprocess);

  /// Builds a feature dataset from explicit jobs (production experiments).
  /// Per-node preprocessing/extraction fans out across `pool` (nullptr uses
  /// the global pool); rows are written by index, so the result is
  /// bit-identical regardless of the pool size.
  static features::FeatureDataset build_from_jobs(
      const std::vector<telemetry::JobTelemetry>& jobs,
      const PreprocessOptions& preprocess, util::ThreadPool* pool = nullptr);

  /// Heterogeneous variant: jobs whose node frames use a custom column
  /// layout (e.g. CPU + GPU catalogs); `metric_names` and `kinds` describe
  /// every column of the raw matrices.
  static features::FeatureDataset build_from_jobs(
      const std::vector<telemetry::JobTelemetry>& jobs,
      const std::vector<std::string>& metric_names,
      const std::vector<telemetry::MetricKind>& kinds,
      const PreprocessOptions& preprocess, util::ThreadPool* pool = nullptr);

  /// Scaler access (fit on training features, reuse at inference).
  Scaler& scaler() noexcept { return scaler_; }
  const Scaler& scaler() const noexcept { return scaler_; }
  DataGenerator& generator() noexcept { return generator_; }

 private:
  DataGenerator generator_;
  Scaler scaler_;
};

/// Column names for the full catalog feature matrix.
std::vector<std::string> full_feature_names();

}  // namespace prodigy::pipeline
