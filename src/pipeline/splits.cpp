#include "pipeline/splits.hpp"

#include <algorithm>
#include <stdexcept>

namespace prodigy::pipeline {

namespace {

/// Shuffled index lists per class.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_by_class(
    const std::vector<int>& labels, util::Rng& rng) {
  std::vector<std::size_t> healthy, anomalous;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    (labels[i] != 0 ? anomalous : healthy).push_back(i);
  }
  auto shuffle = [&rng](std::vector<std::size_t>& xs) {
    for (std::size_t i = xs.size(); i > 1; --i) {
      std::swap(xs[i - 1], xs[rng.uniform_index(i)]);
    }
  };
  shuffle(healthy);
  shuffle(anomalous);
  return {std::move(healthy), std::move(anomalous)};
}

}  // namespace

SplitIndices stratified_split(const std::vector<int>& labels, double train_fraction,
                              std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("stratified_split: train_fraction must be in (0,1)");
  }
  util::Rng rng(seed);
  auto [healthy, anomalous] = split_by_class(labels, rng);

  SplitIndices split;
  auto take = [&split, train_fraction](const std::vector<std::size_t>& pool) {
    const auto n_train = static_cast<std::size_t>(
        train_fraction * static_cast<double>(pool.size()) + 0.5);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      (i < n_train ? split.train : split.test).push_back(pool[i]);
    }
  };
  take(healthy);
  take(anomalous);
  return split;
}

SplitIndices prodigy_split(const std::vector<int>& labels, double train_fraction,
                           double train_anomaly_ratio, std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("prodigy_split: train_fraction must be in (0,1)");
  }
  if (train_anomaly_ratio < 0.0 || train_anomaly_ratio >= 1.0) {
    throw std::invalid_argument("prodigy_split: bad train_anomaly_ratio");
  }
  util::Rng rng(seed);
  auto [healthy, anomalous] = split_by_class(labels, rng);

  // Target: |train| = train_fraction * N, composed of at most
  // train_anomaly_ratio anomalous samples.  On Eclipse (74% anomalous raw
  // data) this yields the paper's ~90% anomalous test split; on Volta the
  // native ratio is already under the cap, so the split stays stratified.
  const auto n = labels.size();
  auto train_total = static_cast<std::size_t>(
      train_fraction * static_cast<double>(n) + 0.5);
  auto want_anomalous = std::min<std::size_t>(
      static_cast<std::size_t>(train_anomaly_ratio * static_cast<double>(train_total) + 0.5),
      // Never exceed the stratified share of anomalous samples.
      static_cast<std::size_t>(train_fraction * static_cast<double>(anomalous.size()) + 0.5));
  std::size_t want_healthy = train_total - want_anomalous;
  if (want_healthy > healthy.size()) {
    // Not enough healthy samples to reach the target size; shrink the split.
    want_healthy = healthy.size() > 0 ? healthy.size() - 1 : 0;
  }

  SplitIndices split;
  for (std::size_t i = 0; i < healthy.size(); ++i) {
    (i < want_healthy ? split.train : split.test).push_back(healthy[i]);
  }
  for (std::size_t i = 0; i < anomalous.size(); ++i) {
    (i < want_anomalous ? split.train : split.test).push_back(anomalous[i]);
  }
  return split;
}

std::vector<SplitIndices> stratified_kfold(const std::vector<int>& labels,
                                           std::size_t folds, std::uint64_t seed) {
  if (folds < 2) throw std::invalid_argument("stratified_kfold: folds must be >= 2");
  util::Rng rng(seed);
  auto [healthy, anomalous] = split_by_class(labels, rng);

  std::vector<SplitIndices> result(folds);
  auto deal = [&result, folds](const std::vector<std::size_t>& pool) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const std::size_t test_fold = i % folds;
      for (std::size_t f = 0; f < folds; ++f) {
        (f == test_fold ? result[f].test : result[f].train).push_back(pool[i]);
      }
    }
  };
  deal(healthy);
  deal(anomalous);
  return result;
}

}  // namespace prodigy::pipeline
