#include "stream/window.hpp"

#include <algorithm>
#include <stdexcept>

namespace prodigy::stream {

WindowState::WindowState(std::size_t window, std::size_t hop, std::size_t cols)
    : window_(window), hop_(hop), cols_(cols), ring_(window, cols),
      ring_ts_(window, 0) {
  if (window == 0 || hop == 0 || cols == 0) {
    throw std::invalid_argument("WindowState: window, hop, and cols must be > 0");
  }
}

void WindowState::push_row(std::int64_t timestamp, std::span<const double> row) {
  if (row.size() != cols_) {
    throw std::invalid_argument("WindowState::push_row: row width " +
                                std::to_string(row.size()) + " != " +
                                std::to_string(cols_));
  }
  const std::size_t slot = static_cast<std::size_t>(pushed_ % window_);
  ring_.set_row(slot, row);
  ring_ts_[slot] = timestamp;
  ++pushed_;
}

bool WindowState::ready() const noexcept {
  // Next window's rows are [emitted_*hop, emitted_*hop + window).
  return pushed_ >= emitted_ * hop_ + window_;
}

WindowSpan WindowState::pop(tensor::Matrix& out) {
  if (!ready()) throw std::logic_error("WindowState::pop: no window ready");
  const std::uint64_t start = emitted_ * hop_;
  if (pushed_ > start + window_) {
    // Rows of this window were already overwritten — the caller failed to
    // drain eagerly.  Losing data silently would corrupt scoring, so refuse.
    throw std::logic_error("WindowState::pop: window rows overwritten "
                           "(drain ready windows after every push)");
  }
  if (out.rows() != window_ || out.cols() != cols_) {
    out = tensor::Matrix(window_, cols_);
  }
  WindowSpan span;
  span.index = emitted_;
  for (std::size_t r = 0; r < window_; ++r) {
    const std::size_t slot = static_cast<std::size_t>((start + r) % window_);
    out.set_row(r, ring_.row(slot));
    if (r == 0) span.start_ts = ring_ts_[slot];
    if (r + 1 == window_) span.end_ts = ring_ts_[slot];
  }
  ++emitted_;
  return span;
}

WindowSpan WindowState::pop_delta(tensor::Matrix& out) {
  if (!ready()) {
    throw std::logic_error("WindowState::pop_delta: no window ready");
  }
  const std::uint64_t start = emitted_ * hop_;
  const std::uint64_t end = start + window_;
  if (pushed_ > end) {
    throw std::logic_error("WindowState::pop_delta: window rows overwritten "
                           "(drain ready windows after every push)");
  }
  // Rows [start, prev_end) were already delivered with the previous window;
  // only [delta_start, end) is new.  The first emission (and hop >= window)
  // delivers the full window.
  const std::uint64_t prev_end =
      emitted_ == 0 ? start : (emitted_ - 1) * hop_ + window_;
  const std::uint64_t delta_start = std::max(start, prev_end);
  const std::size_t delta_rows = static_cast<std::size_t>(end - delta_start);
  if (out.rows() != delta_rows || out.cols() != cols_) {
    out = tensor::Matrix(delta_rows, cols_);
  }
  for (std::size_t r = 0; r < delta_rows; ++r) {
    const std::size_t slot = static_cast<std::size_t>((delta_start + r) % window_);
    out.set_row(r, ring_.row(slot));
  }
  WindowSpan span;
  span.index = emitted_;
  span.start_ts = ring_ts_[static_cast<std::size_t>(start % window_)];
  span.end_ts = ring_ts_[static_cast<std::size_t>((end - 1) % window_)];
  ++emitted_;
  return span;
}

}  // namespace prodigy::stream
