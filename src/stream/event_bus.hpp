// The alert path of the streaming subsystem: the online scorer publishes one
// VerdictEvent per scored window; subscribers receive either the raw verdict
// stream or the debounced state-transition stream.  Debouncing collapses K
// consecutive identical verdicts into a single transition event, so a node
// flapping around the threshold (healthy, anomalous, healthy, ...) raises no
// alert until one state holds for K windows.
//
// Thread-safety: publish() may be called from any thread (scoring tasks run
// on the pool).  Sinks are invoked outside the bus lock and must be
// thread-safe themselves; per-node event order is preserved as long as the
// publisher serializes per-node publishes (the OnlineScorer does).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace prodigy::stream {

/// One scored window of one node.
struct VerdictEvent {
  std::int64_t job_id = 0;
  std::int64_t component_id = 0;
  std::string app;
  std::uint64_t window_index = 0;
  std::int64_t window_start_ts = 0;
  std::int64_t window_end_ts = 0;
  double score = 0.0;
  double threshold = 0.0;
  bool anomalous = false;
};

/// A debounced change of a node's health state, confirmed by `consecutive`
/// identical verdicts ending at the carried window.  `initial` marks the
/// first state a node ever settles into (node came online).
struct TransitionEvent {
  std::int64_t job_id = 0;
  std::int64_t component_id = 0;
  std::string app;
  bool anomalous = false;  // the new state
  bool initial = false;
  std::uint64_t window_index = 0;  // window that confirmed the transition
  std::int64_t window_start_ts = 0;
  std::int64_t window_end_ts = 0;
  double score = 0.0;
  double threshold = 0.0;
  std::uint64_t consecutive = 0;  // debounce depth that confirmed it (== K)
};

struct EventBusConfig {
  /// Consecutive identical verdicts required to change a node's debounced
  /// state.  1 = every verdict flip is a transition (no debouncing).
  std::size_t debounce_windows = 3;
};

class EventBus {
 public:
  using VerdictSink = std::function<void(const VerdictEvent&)>;
  using TransitionSink = std::function<void(const TransitionEvent&)>;

  explicit EventBus(EventBusConfig config = {});

  /// Subscribes to every scored window.  Returns an id for unsubscribe().
  std::uint64_t subscribe(VerdictSink sink);
  /// Subscribes to debounced state transitions only.
  std::uint64_t subscribe_transitions(TransitionSink sink);
  void unsubscribe(std::uint64_t id);

  /// Dispatches to raw subscribers, folds the verdict into the node's
  /// debounce state, and dispatches a TransitionEvent when the state flips.
  void publish(const VerdictEvent& event);

  /// Debounced state of one node, if it has settled yet.
  std::optional<bool> node_state(std::int64_t job_id,
                                 std::int64_t component_id) const;

  std::uint64_t verdicts_published() const;
  std::uint64_t transitions_published() const;
  /// Verdicts absorbed by debouncing: identical to the current state, or a
  /// candidate flip that had not yet reached K when it broke.
  std::uint64_t suppressed() const;

 private:
  struct NodeState {
    std::optional<bool> state;    // settled debounced state
    std::optional<bool> candidate;
    std::size_t candidate_count = 0;
  };

  EventBusConfig config_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<const VerdictSink>> verdict_sinks_;
  std::map<std::uint64_t, std::shared_ptr<const TransitionSink>> transition_sinks_;
  std::map<std::pair<std::int64_t, std::int64_t>, NodeState> nodes_;
  std::uint64_t next_id_ = 1;
  std::uint64_t verdicts_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace prodigy::stream
