// The alert path of the streaming subsystem: the online scorer publishes one
// VerdictEvent per scored window; subscribers receive either the raw verdict
// stream or the debounced state-transition stream.  Debouncing collapses K
// consecutive identical verdicts into a single transition event, so a node
// flapping around the threshold (healthy, anomalous, healthy, ...) raises no
// alert until one state holds for K windows.
//
// Thread-safety: publish() may be called from any thread (scoring tasks run
// on the pool).  Sinks are invoked outside the bus lock and must be
// thread-safe themselves; per-node event order is preserved as long as the
// publisher serializes per-node publishes (the OnlineScorer does).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace prodigy::stream {

/// One scored window of one node.
struct VerdictEvent {
  std::int64_t job_id = 0;
  std::int64_t component_id = 0;
  std::string app;
  std::uint64_t window_index = 0;
  std::int64_t window_start_ts = 0;
  std::int64_t window_end_ts = 0;
  double score = 0.0;
  double threshold = 0.0;
  bool anomalous = false;
  /// Generation of the model that scored this window.  0 = the scorer's own
  /// frozen bundle (no adaptation); adaptive providers stamp >= 1 and bump
  /// on every hot-swap.  Debouncing is generation-scoped: a candidate streak
  /// never carries across a swap (see publish()).
  std::uint64_t model_generation = 0;
};

/// A debounced change of a node's health state, confirmed by `consecutive`
/// identical verdicts ending at the carried window.  `initial` marks the
/// first state a node ever settles into (node came online).
struct TransitionEvent {
  std::int64_t job_id = 0;
  std::int64_t component_id = 0;
  std::string app;
  bool anomalous = false;  // the new state
  bool initial = false;
  std::uint64_t window_index = 0;  // window that confirmed the transition
  std::int64_t window_start_ts = 0;
  std::int64_t window_end_ts = 0;
  double score = 0.0;
  double threshold = 0.0;
  std::uint64_t consecutive = 0;  // debounce depth that confirmed it (== K)
  std::uint64_t model_generation = 0;  // generation of the confirming verdict
};

/// Lifecycle event of the online-adaptation loop (adapt/model_manager.cpp):
/// drift flagged on the score stream, a candidate model hot-swapped in, or a
/// candidate refused by validation.
struct DriftEvent {
  enum class Kind : std::uint8_t { DriftDetected, ModelSwapped, SwapRefused };
  Kind kind = Kind::DriftDetected;
  /// Provider scope ("" for a single scorer, "shard<k>" in a fleet).
  std::string scope;
  /// Active model generation when the event fired (the NEW generation for
  /// ModelSwapped).
  std::uint64_t generation = 0;
  double statistic = 0.0;  // Page–Hinkley statistic at detection
  double threshold = 0.0;  // active detector threshold
  std::uint64_t reservoir_samples = 0;  // healthy rows held at event time
};

struct EventBusConfig {
  /// Consecutive identical verdicts required to change a node's debounced
  /// state.  1 = every verdict flip is a transition (no debouncing).
  std::size_t debounce_windows = 3;
};

class EventBus {
 public:
  using VerdictSink = std::function<void(const VerdictEvent&)>;
  using TransitionSink = std::function<void(const TransitionEvent&)>;
  using DriftSink = std::function<void(const DriftEvent&)>;

  explicit EventBus(EventBusConfig config = {});

  /// Subscribes to every scored window.  Returns an id for unsubscribe().
  std::uint64_t subscribe(VerdictSink sink);
  /// Subscribes to debounced state transitions only.
  std::uint64_t subscribe_transitions(TransitionSink sink);
  /// Subscribes to adaptation lifecycle events (drift / swap / refusal).
  std::uint64_t subscribe_drift(DriftSink sink);
  void unsubscribe(std::uint64_t id);

  /// Dispatches to raw subscribers, folds the verdict into the node's
  /// debounce state, and dispatches a TransitionEvent when the state flips.
  /// A verdict whose model_generation differs from the node's last seen one
  /// breaks any pending candidate streak first: pre-swap near-transitions
  /// must neither suppress nor cheapen the first post-swap transition (the
  /// settled state itself is kept — a swap is not a health change).
  void publish(const VerdictEvent& event);

  /// Dispatches an adaptation event to drift subscribers.
  void publish(const DriftEvent& event);

  /// Debounced state of one node, if it has settled yet.
  std::optional<bool> node_state(std::int64_t job_id,
                                 std::int64_t component_id) const;

  std::uint64_t verdicts_published() const;
  std::uint64_t transitions_published() const;
  std::uint64_t drift_events_published() const;
  /// Verdicts absorbed by debouncing: identical to the current state, or a
  /// candidate flip that had not yet reached K when it broke.
  std::uint64_t suppressed() const;

 private:
  struct NodeState {
    std::optional<bool> state;    // settled debounced state
    std::optional<bool> candidate;
    std::size_t candidate_count = 0;
    std::uint64_t model_generation = 0;  // generation of the last verdict
  };

  EventBusConfig config_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<const VerdictSink>> verdict_sinks_;
  std::map<std::uint64_t, std::shared_ptr<const TransitionSink>> transition_sinks_;
  std::map<std::uint64_t, std::shared_ptr<const DriftSink>> drift_sinks_;
  std::map<std::pair<std::int64_t, std::int64_t>, NodeState> nodes_;
  std::uint64_t next_id_ = 1;
  std::uint64_t verdicts_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t drift_events_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace prodigy::stream
