// Online scoring (the continuous half of the paper's Fig. 4 loop): consumes
// flushed telemetry rows from the StreamIngestor, maintains one sliding
// WindowState per (job, component), and scores every full window — raw
// window -> preprocess -> extract_node_features -> ModelBundle -> verdict —
// publishing one VerdictEvent per window to the EventBus.
//
// Scoring fans out across the shared ThreadPool with *per-node ordering*:
// each node's windows are scored and published in window order by a single
// chained task (so debouncing sees a coherent sequence), while different
// nodes score concurrently.  Feature extraction reuses the thread_local
// FeatureScratch hot path, so steady-state scoring allocates almost nothing.
#pragma once

#include "core/model_trainer.hpp"
#include "features/incremental_profile.hpp"
#include "pipeline/preprocess.hpp"
#include "stream/event_bus.hpp"
#include "stream/ingestor.hpp"
#include "stream/model_provider.hpp"
#include "stream/window.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

namespace prodigy::stream {

/// Streaming preprocessing defaults: identical cleaning to the batch path
/// (interpolate lost readings, difference counters) but no boundary trim —
/// a W-row window is already inside the steady phase of the run.
pipeline::PreprocessOptions streaming_preprocess_defaults();

/// How each ready window is turned into a feature vector.
enum class ExtractionMode : std::uint8_t {
  /// Batch semantics per window: materialize all W rows, preprocess_node,
  /// extract_node_features.  O(W log W) per metric per hop.
  kFullRecompute,
  /// Rolling per-(node, metric) state absorbs only the hop's new rows
  /// (features/incremental_profile.hpp).  Falls back to kFullRecompute
  /// automatically when the configuration defeats reuse (hop >= window) or
  /// requires whole-window preprocessing (trim_seconds != 0).
  kIncremental,
};

struct OnlineScorerConfig {
  std::size_t window = 64;  // W: rows per scored window
  std::size_t hop = 16;     // H: rows between window starts
  pipeline::PreprocessOptions preprocess = streaming_preprocess_defaults();
  ExtractionMode extraction = ExtractionMode::kIncremental;
  util::ThreadPool* pool = nullptr;  // nullptr -> util::ThreadPool::global()
  /// When non-empty (e.g. "shard3"), per-window latency and count are also
  /// recorded under scoped metric names
  /// (prodigy_stream_<scope>_window_score_seconds, ..._windows_scored_total)
  /// so a sharded deployment exposes per-shard p50/p99 next to the fleet
  /// totals.
  std::string metrics_scope;
  /// When set, the scorer's owned bundle copy rebuilds its fused VAE
  /// inference plan at this precision (nn::PlanPrecision::Bf16/Int8 are the
  /// opt-in reduced-precision modes; unset keeps the bundle's default,
  /// bit-exact Full plan).  Requires a fitted bundle.
  std::optional<nn::PlanPrecision> inference_precision;
  /// Online adaptation hook.  When set, every window is scored through a
  /// lease acquired from the provider for exactly that window (the swap is
  /// atomic per window — no torn model), verdicts carry the lease's
  /// generation, and each published verdict is fed back via on_verdict().
  /// Must outlive the scorer.  Null (the default) keeps the scorer's owned
  /// frozen bundle and generation 0 — behavior bit-identical to a build
  /// without adaptation.  `inference_precision` only applies to the owned
  /// bundle, never to provider leases.
  ModelProvider* model_provider = nullptr;
};

class OnlineScorer : public RowSink {
 public:
  /// Owns a copy of the bundle; `bus` must outlive the scorer.
  OnlineScorer(core::ModelBundle bundle, EventBus& bus,
               OnlineScorerConfig config = {});
  ~OnlineScorer() override;

  OnlineScorer(const OnlineScorer&) = delete;
  OnlineScorer& operator=(const OnlineScorer&) = delete;

  /// RowSink: called on the ingestor's consumer thread.
  void on_rows(std::int64_t job_id, std::int64_t component_id,
               const std::string& app,
               std::span<const std::int64_t> timestamps,
               const tensor::Matrix& rows) override;

  /// Blocks until every scheduled window has been scored and published.
  /// Call after StreamIngestor::stop() to observe the complete alert stream.
  void drain();

  std::uint64_t windows_scored() const noexcept {
    return windows_scored_.load(std::memory_order_relaxed);
  }
  std::uint64_t score_errors() const noexcept {
    return score_errors_.load(std::memory_order_relaxed);
  }
  /// Windows dropped while an incremental extractor refills after an
  /// error-recovery reset (no verdict is published for them).
  std::uint64_t windows_skipped() const noexcept {
    return windows_skipped_.load(std::memory_order_relaxed);
  }
  const OnlineScorerConfig& config() const noexcept { return config_; }
  /// The mode actually in effect (kIncremental may auto-fall back; see
  /// ExtractionMode).
  ExtractionMode extraction_mode() const noexcept { return extraction_; }
  const core::ModelBundle& bundle() const noexcept { return bundle_; }

 private:
  struct PendingWindow {
    WindowSpan span;
    // kFullRecompute: the raw (window x cols) rows.  kIncremental: only the
    // rows new since the previous emission (pop_delta).
    tensor::Matrix values;
    std::string app;
  };

  struct NodeState {
    NodeState(std::int64_t job, std::int64_t component, std::size_t window,
              std::size_t hop, std::size_t cols)
        : job_id(job), component_id(component), state(window, hop, cols) {}
    const std::int64_t job_id;
    const std::int64_t component_id;
    WindowState state;  // ingestor-consumer-thread only

    // Created on first on_rows (cols known then); afterwards touched only
    // by this node's single chained scoring task.  Null in full mode.
    std::unique_ptr<features::IncrementalNodeExtractor> extractor;

    std::mutex task_mutex;  // guards pending + task_active
    std::deque<PendingWindow> pending;
    bool task_active = false;
  };

  void run_node_tasks(NodeState& node);
  void score_window(NodeState& node, PendingWindow& window);
  util::ThreadPool& pool() const noexcept;

  core::ModelBundle bundle_;
  EventBus& bus_;
  OnlineScorerConfig config_;
  ExtractionMode extraction_ = ExtractionMode::kFullRecompute;
  // Scoped per-shard instrumentation (null when metrics_scope is empty);
  // registry-owned, resolved once so the hot path stays two atomic bumps.
  util::Counter* scoped_scored_ = nullptr;
  util::Histogram* scoped_latency_ = nullptr;
  std::vector<telemetry::MetricKind> kinds_;
  std::vector<features::ColumnKind> col_kinds_;  // kinds_ mapped for features

  // Touched only on the ingestor consumer thread; node addresses are stable
  // so scoring tasks can hold references across map growth.
  std::map<std::pair<std::int64_t, std::int64_t>, std::unique_ptr<NodeState>>
      nodes_;

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::size_t in_flight_ = 0;  // windows scheduled but not yet published

  std::atomic<std::uint64_t> windows_scored_{0};
  std::atomic<std::uint64_t> score_errors_{0};
  std::atomic<std::uint64_t> windows_skipped_{0};
};

}  // namespace prodigy::stream
