#include "stream/online_scorer.hpp"

#include "features/feature_matrix.hpp"
#include "telemetry/metrics.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

#include <exception>
#include <utility>

namespace prodigy::stream {

pipeline::PreprocessOptions streaming_preprocess_defaults() {
  pipeline::PreprocessOptions options;
  options.trim_seconds = 0.0;
  options.interpolate = true;
  options.diff_counters = true;
  options.min_timestamps = 8;
  return options;
}

OnlineScorer::OnlineScorer(core::ModelBundle bundle, EventBus& bus,
                           OnlineScorerConfig config)
    : bundle_(std::move(bundle)), bus_(bus), config_(config) {
  if (config_.window == 0 || config_.hop == 0) {
    throw std::invalid_argument("OnlineScorer: window and hop must be > 0");
  }
  // Opt-in reduced-precision scoring: rebuild the owned bundle copy's fused
  // VAE plan before any window is scored.  Only this scorer's copy changes;
  // the caller's bundle keeps its own (default Full, bit-exact) plan.
  if (config_.inference_precision) {
    bundle_.detector.set_inference_precision(*config_.inference_precision);
  }
  kinds_.reserve(telemetry::metric_count());
  for (const auto& spec : telemetry::metric_catalog()) {
    kinds_.push_back(spec.kind);
    col_kinds_.push_back(spec.kind == telemetry::MetricKind::Counter
                             ? features::ColumnKind::kCounter
                             : features::ColumnKind::kGauge);
  }

  // The incremental path needs overlapping windows to have anything to
  // reuse, a window large enough to profile, and window-local trimming off
  // (a trimmed window is not a suffix of the stream, so deltas can't feed
  // it).  Anything else silently runs the batch-exact full recompute.
  extraction_ = config_.extraction;
  if (extraction_ == ExtractionMode::kIncremental &&
      (config_.hop >= config_.window || config_.window < 2 ||
       config_.preprocess.trim_seconds != 0.0)) {
    extraction_ = ExtractionMode::kFullRecompute;
  }

  if (!config_.metrics_scope.empty()) {
    auto& registry = util::MetricsRegistry::global();
    const std::string prefix = "prodigy_stream_" + config_.metrics_scope;
    scoped_scored_ = &registry.counter(prefix + "_windows_scored_total");
    scoped_latency_ = &registry.histogram(prefix + "_window_score_seconds");
  }
}

OnlineScorer::~OnlineScorer() { drain(); }

util::ThreadPool& OnlineScorer::pool() const noexcept {
  return config_.pool != nullptr ? *config_.pool : util::ThreadPool::global();
}

void OnlineScorer::on_rows(std::int64_t job_id, std::int64_t component_id,
                           const std::string& app,
                           std::span<const std::int64_t> timestamps,
                           const tensor::Matrix& rows) {
  const bool incremental = extraction_ == ExtractionMode::kIncremental;
  auto& slot = nodes_[{job_id, component_id}];
  if (!slot) {
    slot = std::make_unique<NodeState>(job_id, component_id, config_.window,
                                       config_.hop, rows.cols());
    if (incremental) {
      // Safe to create here: the extractor is only touched by this node's
      // scoring task, and no window of this node is pending yet.
      features::IncrementalConfig inc;
      inc.window = config_.window;
      inc.hop = config_.hop;
      inc.interpolate = config_.preprocess.interpolate;
      inc.diff_counters = config_.preprocess.diff_counters;
      slot->extractor = std::make_unique<features::IncrementalNodeExtractor>(
          rows.cols(), col_kinds_, inc);
    }
  }
  NodeState& node = *slot;

  // Push row-by-row, draining ready windows eagerly so the ring buffer never
  // overwrites an unemitted window (see WindowState::pop).  The incremental
  // mode drains the delta form: only the hop's new rows travel to the
  // scoring task; the extractor holds the rest of the window as state.
  std::vector<PendingWindow> ready;
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    node.state.push_row(timestamps[r], rows.row(r));
    while (node.state.ready()) {
      PendingWindow window;
      window.span = incremental ? node.state.pop_delta(window.values)
                                : node.state.pop(window.values);
      window.app = app;
      ready.push_back(std::move(window));
    }
  }
  if (ready.empty()) return;

  {
    std::lock_guard lock(drain_mutex_);
    in_flight_ += ready.size();
  }
  bool spawn = false;
  {
    std::lock_guard lock(node.task_mutex);
    for (auto& window : ready) node.pending.push_back(std::move(window));
    if (!node.task_active) {
      node.task_active = true;
      spawn = true;
    }
  }
  if (spawn) {
    // One task per node drains that node's queue in order: per-node verdicts
    // stay sequential (debouncing needs that) while nodes run concurrently.
    pool().submit([this, &node] { run_node_tasks(node); });
  }
}

void OnlineScorer::run_node_tasks(NodeState& node) {
  for (;;) {
    PendingWindow window;
    {
      std::lock_guard lock(node.task_mutex);
      if (node.pending.empty()) {
        node.task_active = false;
        // in_flight_ already hit zero for this node's windows; nothing to
        // decrement (this path is only reachable on a spurious respawn).
        return;
      }
      window = std::move(node.pending.front());
      node.pending.pop_front();
    }
    score_window(node, window);
    // Decide whether to continue BEFORE releasing the drain count: once
    // in_flight_ hits zero, drain() returns and the destructor may free
    // `node`, so the decrement must be this task's last touch of any state.
    bool more;
    {
      std::lock_guard lock(node.task_mutex);
      more = !node.pending.empty();
      if (!more) node.task_active = false;
    }
    {
      std::lock_guard lock(drain_mutex_);
      if (--in_flight_ == 0) drain_cv_.notify_all();
    }
    if (!more) return;
  }
}

void OnlineScorer::score_window(NodeState& node, PendingWindow& window) {
  util::Timer timer;
  try {
    // Capacity-reused per worker thread: one warmed-up 1 x F buffer per
    // scoring thread instead of a fresh heap matrix per window.
    thread_local tensor::Matrix X;
    if (node.extractor) {
      thread_local std::vector<double> features;
      features.resize(node.extractor->cols() * features::features_per_metric());
      if (!node.extractor->absorb_and_extract(window.values, features)) {
        // Still refilling after an error-recovery reset: the rolling state
        // does not cover a full window yet, so no verdict can be produced.
        windows_skipped_.fetch_add(1, std::memory_order_relaxed);
        util::MetricsRegistry::global()
            .counter("prodigy_stream_windows_skipped_total")
            .increment();
        return;
      }
      X.resize_for_overwrite(1, features.size());
      X.set_row(0, features);
    } else {
      const tensor::Matrix prepared =
          pipeline::preprocess_node(window.values, kinds_, config_.preprocess);
      const std::vector<double> features =
          features::extract_node_features(prepared);
      X.resize_for_overwrite(1, features.size());
      X.set_row(0, features);
    }
    // One lease covers the whole window: scoring, threshold, and the verdict
    // all come from the same (bundle, generation) pair even if the provider
    // hot-swaps concurrently.  Without a provider the owned frozen bundle is
    // used and verdicts carry generation 0 — exactly the pre-adaptation
    // behavior.
    ModelProvider::Lease lease;
    const core::ModelBundle* bundle = &bundle_;
    if (config_.model_provider != nullptr) {
      lease = config_.model_provider->acquire();
      bundle = lease.bundle.get();
    }
    const tensor::Matrix model_input = bundle->transform_full(X);
    const auto scores = bundle->detector.score(model_input);

    VerdictEvent event;
    event.job_id = node.job_id;
    event.component_id = node.component_id;
    event.app = window.app;
    event.window_index = window.span.index;
    event.window_start_ts = window.span.start_ts;
    event.window_end_ts = window.span.end_ts;
    event.score = scores.at(0);
    event.threshold = bundle->detector.threshold();
    event.anomalous = event.score > event.threshold;
    event.model_generation = lease.generation;

    windows_scored_.fetch_add(1, std::memory_order_relaxed);
    auto& registry = util::MetricsRegistry::global();
    registry.counter("prodigy_stream_windows_scored_total").increment();
    const double seconds = timer.elapsed_seconds();
    registry.histogram("prodigy_stream_window_score_seconds").observe(seconds);
    if (scoped_scored_ != nullptr) {
      scoped_scored_->increment();
      scoped_latency_->observe(seconds);
    }
    bus_.publish(event);
    if (config_.model_provider != nullptr) {
      // Feedback after publish: the verdict is already on the wire, so even
      // a synchronous swap triggered here only affects the NEXT window.
      config_.model_provider->on_verdict(event, model_input.row(0));
    }
  } catch (const std::exception& e) {
    // A daemon must survive one malformed window (e.g. a frame width that
    // does not match the bundle's feature space); count it and move on.
    score_errors_.fetch_add(1, std::memory_order_relaxed);
    util::MetricsRegistry::global()
        .counter("prodigy_stream_score_errors_total")
        .increment();
    util::log_warn("OnlineScorer: window ", window.span.index, " of node ",
                   node.job_id, "/", node.component_id, " failed: ", e.what());
    if (node.extractor) {
      // The failed absorb may have left the rolling state half-updated
      // (poisoned); drop it and refill from the next window's deltas.
      node.extractor->reset();
    }
  }
}

void OnlineScorer::drain() {
  std::unique_lock lock(drain_mutex_);
  drain_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

}  // namespace prodigy::stream
