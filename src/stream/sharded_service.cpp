#include "stream/sharded_service.hpp"

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace prodigy::stream {

// ---------------------------------------------------------------------------
// ShardFaultInjector

ShardFaultInjector::ShardFaultInjector(std::size_t shards) : states_(shards) {}

void ShardFaultInjector::stall(std::size_t shard) {
  std::lock_guard lock(mutex_);
  states_.at(shard).stalled = true;
}

void ShardFaultInjector::release(std::size_t shard) {
  {
    std::lock_guard lock(mutex_);
    states_.at(shard).stalled = false;
  }
  cv_.notify_all();
}

void ShardFaultInjector::release_all() {
  {
    std::lock_guard lock(mutex_);
    for (State& state : states_) state.stalled = false;
  }
  cv_.notify_all();
}

void ShardFaultInjector::set_delay(std::size_t shard,
                                   std::chrono::microseconds delay) {
  std::lock_guard lock(mutex_);
  states_.at(shard).delay = delay;
}

bool ShardFaultInjector::stalled(std::size_t shard) const {
  std::lock_guard lock(mutex_);
  return states_.at(shard).stalled;
}

void ShardFaultInjector::wait_until_stalled(std::size_t shard) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return states_.at(shard).parked; });
}

void ShardFaultInjector::on_flush(std::size_t shard) {
  std::chrono::microseconds delay{0};
  {
    std::lock_guard lock(mutex_);
    delay = states_.at(shard).delay;
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);

  std::unique_lock lock(mutex_);
  State& state = states_.at(shard);
  if (!state.stalled) return;
  state.parked = true;
  cv_.notify_all();  // wake wait_until_stalled
  cv_.wait(lock, [&] { return !state.stalled; });
  state.parked = false;
}

// ---------------------------------------------------------------------------
// ShardedAnalyticsService

/// Threads the fault hook in front of the shard's scorer on the ingestor
/// consumer thread: a stalled shard freezes here, with its queue intact.
class ShardedAnalyticsService::ShardSink : public RowSink {
 public:
  ShardSink(std::size_t shard, ShardFaultInjector* faults, RowSink* inner)
      : shard_(shard), faults_(faults), inner_(inner) {}

  void on_rows(std::int64_t job_id, std::int64_t component_id,
               const std::string& app,
               std::span<const std::int64_t> timestamps,
               const tensor::Matrix& rows) override {
    if (faults_ != nullptr) faults_->on_flush(shard_);
    if (inner_ != nullptr) {
      inner_->on_rows(job_id, component_id, app, timestamps, rows);
    }
  }

 private:
  const std::size_t shard_;
  ShardFaultInjector* faults_;
  RowSink* inner_;
};

/// One shard replica.  Declaration order is destruction-critical: the
/// ingestor dies first (stops the producer into the scorer), the scorer
/// drains while its pool still exists, the query service and pool go next,
/// and the store outlives them all.
struct ShardedAnalyticsService::Shard {
  deploy::DsosStore store;
  std::unique_ptr<util::ThreadPool> pool;  // null -> global pool
  std::unique_ptr<deploy::AnalyticsService> service;
  // Declared before the scorer on purpose: the scorer holds a raw pointer
  // to the provider and feeds it from scoring tasks, so the provider must be
  // destroyed after the scorer has drained (reverse declaration order).
  std::unique_ptr<ModelProvider> provider;
  std::unique_ptr<OnlineScorer> scorer;
  std::unique_ptr<ShardSink> sink;
  std::unique_ptr<StreamIngestor> ingestor;
  std::atomic<bool> alive{true};

  // Generation the query service's bundle was last synced to (see
  // analyze_job); guarded so concurrent queries race neither the check nor
  // the swap.
  std::mutex service_refresh_mutex;
  std::uint64_t service_generation = 0;

  // Registry-owned per-shard instrumentation, resolved once.
  util::Gauge* queue_depth_gauge = nullptr;
  util::Counter* shed_counter = nullptr;
};

ShardedAnalyticsService::ShardedAnalyticsService(core::ModelBundle bundle,
                                                 ShardedServiceConfig config,
                                                 ShardFaultInjector* faults)
    : config_(config), faults_(faults), bus_(config.bus) {
  if (config_.shards == 0) config_.shards = 1;
  auto& registry = util::MetricsRegistry::global();
  shed_counter_ = &registry.counter("prodigy_sharded_shed_samples_total");
  query_shed_counter_ = &registry.counter("prodigy_sharded_queries_shed_total");

  shards_.reserve(config_.shards);
  for (std::size_t k = 0; k < config_.shards; ++k) {
    auto shard = std::make_unique<Shard>();
    if (config_.scorer_threads > 0) {
      shard->pool = std::make_unique<util::ThreadPool>(config_.scorer_threads);
    }
    // Queries run against the shard-local store with the shard's own result
    // cache; the cache key already includes the shard store's generation, so
    // shard-local re-ingest invalidates exactly that shard's entries.
    shard->service = std::make_unique<deploy::AnalyticsService>(
        shard->store, bundle, config_.preprocess, /*explain=*/false,
        comte::ComteConfig{}, config_.cache_capacity);
    if (shard->pool) shard->service->set_thread_pool(shard->pool.get());

    if (config_.adaptation) {
      shard->provider = config_.adaptation(k, bundle, bus_);
      shard->service_generation = shard->provider->acquire().generation;
    }

    OnlineScorerConfig scorer_config = config_.scorer;
    scorer_config.pool = shard->pool.get();  // null -> global
    scorer_config.metrics_scope = "shard" + std::to_string(k);
    scorer_config.model_provider = shard->provider.get();  // null = frozen
    shard->scorer = std::make_unique<OnlineScorer>(bundle, bus_, scorer_config);
    shard->sink =
        std::make_unique<ShardSink>(k, faults_, shard->scorer.get());
    shard->ingestor = std::make_unique<StreamIngestor>(
        shard->store, config_.ingest, shard->sink.get());

    const std::string prefix = "prodigy_shard" + std::to_string(k);
    shard->queue_depth_gauge = &registry.gauge(prefix + "_queue_depth");
    shard->shed_counter = &registry.counter(prefix + "_shed_samples_total");
    shards_.push_back(std::move(shard));
  }
}

ShardedAnalyticsService::~ShardedAnalyticsService() { stop(); }

bool ShardedAnalyticsService::offer(const SampleBatch& batch) {
  const std::uint64_t samples = batch.sample_count();
  offered_samples_.fetch_add(samples, std::memory_order_relaxed);

  // Fleet-wide admission: one hot shard must not wedge the dispatcher, so
  // once the total queued budget is gone the whole batch is shed up front
  // (service-level DropNewest on top of the per-shard policies).
  if (config_.max_total_queued_batches > 0) {
    std::size_t queued = 0;
    for (const auto& shard : shards_) queued += shard->ingestor->queue_depth();
    if (queued >= config_.max_total_queued_batches) {
      shed_samples_.fetch_add(samples, std::memory_order_relaxed);
      shed_counter_->increment(samples);
      return false;
    }
  }

  // Route rows to their owning shards.  Sub-batches inherit the sequence
  // number for gap diagnostics; rows-within-node order is preserved.
  std::vector<SampleBatch> routed(shards_.size());
  for (const auto& row : batch.rows) {
    routed[deploy::shard_of(row.job_id, row.component_id, shards_.size())]
        .rows.push_back(row);
  }

  bool accepted = true;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (routed[k].rows.empty()) continue;
    routed[k].sequence = batch.sequence;
    Shard& shard = *shards_[k];
    if (!shard.alive.load(std::memory_order_acquire)) {
      // Dead shard: shed at the dispatcher (the crashed ingestor is joined;
      // nothing downstream will ever account these rows).
      const auto lost = static_cast<std::uint64_t>(routed[k].rows.size());
      shed_samples_.fetch_add(lost, std::memory_order_relaxed);
      shed_counter_->increment(lost);
      shard.shed_counter->increment(lost);
      accepted = false;
      continue;
    }
    if (!shard.ingestor->offer(std::move(routed[k]))) accepted = false;
    shard.queue_depth_gauge->set(
        static_cast<double>(shard.ingestor->queue_depth()));
  }
  return accepted;
}

std::optional<deploy::JobAnalysis> ShardedAnalyticsService::analyze_job(
    std::int64_t job_id) const {
  // Query admission gate (service-level reuse of the PR 4 policies: Block
  // parks the caller, anything else sheds).
  if (config_.max_concurrent_queries > 0) {
    std::unique_lock lock(query_gate_.mutex);
    if (query_gate_.in_flight >= config_.max_concurrent_queries) {
      if (config_.query_admission == BackpressurePolicy::Block) {
        query_gate_.cv.wait(lock, [&] {
          return query_gate_.in_flight < config_.max_concurrent_queries;
        });
      } else {
        ++query_gate_.shed;
        query_shed_counter_->increment();
        return std::nullopt;
      }
    }
    ++query_gate_.in_flight;
    ++query_gate_.admitted;
  } else {
    std::lock_guard lock(query_gate_.mutex);
    ++query_gate_.admitted;
  }

  util::Timer timer;
  deploy::JobAnalysis merged;
  merged.job_id = job_id;
  bool found = false;
  bool all_cached = true;
  try {
    // Fan out to every shard holding a slice of the job and merge verdicts
    // in component order — the exact order the single-shard store iterates,
    // so the merged analysis is bit-identical to the unsharded one.
    for (const auto& shard : shards_) {
      if (!shard->store.has_job(job_id)) continue;
      if (shard->provider) {
        // Queries must see the same model the stream scores with: when the
        // provider's generation has advanced past the query service's
        // bundle, hot-swap it in before analyzing.  set_bundle stamps a
        // fresh bundle id, so cached analyses from older generations can
        // never be served (the PR 2 cache-key contract, extended to swaps).
        const ModelProvider::Lease lease = shard->provider->acquire();
        std::lock_guard lock(shard->service_refresh_mutex);
        if (lease.generation != shard->service_generation) {
          shard->service->set_bundle(*lease.bundle);
          shard->service_generation = lease.generation;
        }
      }
      deploy::JobAnalysis part = shard->service->analyze_job(job_id);
      found = true;
      merged.app = part.app;
      merged.store_generation =
          std::max(merged.store_generation, part.store_generation);
      all_cached = all_cached && part.from_cache;
      merged.nodes.insert(merged.nodes.end(),
                          std::make_move_iterator(part.nodes.begin()),
                          std::make_move_iterator(part.nodes.end()));
    }
  } catch (...) {
    if (config_.max_concurrent_queries > 0) {
      {
        std::lock_guard lock(query_gate_.mutex);
        --query_gate_.in_flight;
      }
      query_gate_.cv.notify_one();
    }
    throw;
  }
  if (config_.max_concurrent_queries > 0) {
    {
      std::lock_guard lock(query_gate_.mutex);
      --query_gate_.in_flight;
    }
    query_gate_.cv.notify_one();
  }
  if (!found) {
    throw std::out_of_range("ShardedAnalyticsService: unknown job " +
                            std::to_string(job_id));
  }
  std::sort(merged.nodes.begin(), merged.nodes.end(),
            [](const deploy::NodeVerdict& a, const deploy::NodeVerdict& b) {
              return a.component_id < b.component_id;
            });
  merged.from_cache = all_cached;
  merged.seconds = timer.elapsed_seconds();
  util::MetricsRegistry::global()
      .histogram("prodigy_sharded_query_seconds")
      .observe(merged.seconds);
  return merged;
}

void ShardedAnalyticsService::stop() {
  // Shutdown outranks injected faults: a consumer frozen inside the stall
  // hook can neither drain its queue nor be joined.
  if (faults_ != nullptr) faults_->release_all();
  for (auto& shard : shards_) {
    if (shard->alive.load(std::memory_order_acquire)) shard->ingestor->stop();
  }
  drain();
}

void ShardedAnalyticsService::drain() {
  for (auto& shard : shards_) shard->scorer->drain();
}

void ShardedAnalyticsService::crash_shard(std::size_t shard_index) {
  Shard& shard = *shards_.at(shard_index);
  if (!shard.alive.exchange(false, std::memory_order_acq_rel)) return;
  // Mark the ingestor dying BEFORE releasing any stall: a consumer frozen
  // inside the fault hook then observes the abort the moment it finishes the
  // interrupted flush, so it discards the backlog instead of racing crash
  // delivery to drain it (abort() below performs the join).
  shard.ingestor->request_abort();
  if (faults_ != nullptr) faults_->release(shard_index);
  shard.ingestor->abort();
  shard.queue_depth_gauge->set(0.0);
  util::log_warn("ShardedAnalyticsService: shard ", shard_index,
                 " crashed; dispatcher now sheds its traffic");
}

bool ShardedAnalyticsService::shard_alive(std::size_t shard) const {
  return shards_.at(shard)->alive.load(std::memory_order_acquire);
}

const deploy::DsosStore& ShardedAnalyticsService::shard_store(
    std::size_t shard) const {
  return shards_.at(shard)->store;
}

std::size_t ShardedAnalyticsService::shard_queue_depth(std::size_t shard) const {
  return shards_.at(shard)->ingestor->queue_depth();
}

std::uint64_t ShardedAnalyticsService::shard_windows_scored(
    std::size_t shard) const {
  return shards_.at(shard)->scorer->windows_scored();
}

ShardedStats ShardedAnalyticsService::stats() const {
  ShardedStats stats;
  stats.offered_samples = offered_samples_.load(std::memory_order_relaxed);
  stats.shed_samples = shed_samples_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(query_gate_.mutex);
    stats.queries = query_gate_.admitted;
    stats.queries_shed = query_gate_.shed;
  }
  stats.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const IngestorStats s = shard->ingestor->stats();
    stats.totals.offered_samples += s.offered_samples;
    stats.totals.flushed_samples += s.flushed_samples;
    stats.totals.dropped_samples += s.dropped_samples;
    stats.totals.duplicate_samples += s.duplicate_samples;
    stats.totals.late_samples += s.late_samples;
    stats.totals.malformed_samples += s.malformed_samples;
    stats.totals.flushes += s.flushes;
    stats.per_shard.push_back(s);
  }
  return stats;
}

std::uint64_t ShardedAnalyticsService::windows_scored() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->scorer->windows_scored();
  return total;
}

std::uint64_t ShardedAnalyticsService::score_errors() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->scorer->score_errors();
  return total;
}

ShardedAnalyticsService::FleetAdaptationStats
ShardedAnalyticsService::adaptation_stats() const {
  FleetAdaptationStats stats;
  stats.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    AdaptationStats s;
    if (shard->provider) s = shard->provider->adaptation_stats();
    stats.totals.generation = std::max(stats.totals.generation, s.generation);
    stats.totals.drifts_detected += s.drifts_detected;
    stats.totals.refits_started += s.refits_started;
    stats.totals.swaps_completed += s.swaps_completed;
    stats.totals.swaps_refused += s.swaps_refused;
    stats.totals.reservoir_samples += s.reservoir_samples;
    stats.totals.reservoir_offered += s.reservoir_offered;
    stats.per_shard.push_back(s);
  }
  return stats;
}

std::uint64_t ShardedAnalyticsService::shard_model_generation(
    std::size_t shard) const {
  const auto& s = shards_.at(shard);
  return s->provider ? s->provider->acquire().generation : 0;
}

}  // namespace prodigy::stream
