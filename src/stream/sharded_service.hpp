// Fleet-scale sharded analytics service: N shard replicas of the PR 2/PR 4
// single-process stack — each shard owns its DsosStore, bounded ingest queue,
// cache generation, worker pool, and OnlineScorer — behind one front-end
// dispatcher that routes every sample row and query by the frozen node-hash
// (deploy/shard_router.hpp).  Per-node state never straddles shards, so
// sharded scoring is bit-identical to the single-shard oracle for any shard
// count and pool size (tests/service_shard_test.cpp pins this with
// EXPECT_EQ).
//
// Admission control and load-shedding reuse the PR 4 backpressure policies at
// the service level: each shard queue applies its own Block / DropOldest /
// DropNewest policy, the dispatcher sheds whole batches once the fleet-wide
// queued budget is exhausted, and the query path can bound concurrent
// analyze_job requests (Block stalls callers, anything else sheds).  Every
// offered sample lands in exactly one terminal bucket, so the fleet-wide
// accounting invariant holds even while shards stall, crash, or run slow:
//
//   dispatcher offered == dispatcher shed
//                       + sum over shards (flushed + dropped + duplicate
//                                          + late + malformed)
//
// Fault injection: a ShardFaultInjector freezes (stall), delays (slow), or —
// via crash_shard() — kills a shard mid-stream, exercising exactly the
// degraded modes the harness asserts graceful recovery from.
#pragma once

#include "deploy/service.hpp"
#include "deploy/shard_router.hpp"
#include "stream/event_bus.hpp"
#include "stream/ingestor.hpp"
#include "stream/model_provider.hpp"
#include "stream/online_scorer.hpp"
#include "util/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace prodigy::util {
class Counter;
class Gauge;
}  // namespace prodigy::util

namespace prodigy::stream {

/// Per-shard fault hooks, called on each shard's ingestor consumer thread at
/// flush time.  stall() freezes the next flush until release(); set_delay()
/// slows every flush; wait_until_stalled() lets a test sequence faults
/// deterministically (no wall-clock sleeps).
class ShardFaultInjector {
 public:
  explicit ShardFaultInjector(std::size_t shards);

  /// Freezes `shard`'s consumer at its next flush (and keeps it frozen).
  void stall(std::size_t shard);
  /// Unfreezes a stalled shard; its consumer resumes and catches up.
  void release(std::size_t shard);
  /// Unfreezes every stalled shard.  Called by the service on stop():
  /// shutdown outranks injected faults — a frozen consumer can neither drain
  /// nor be joined, and a mid-test failure must not wedge the whole suite.
  void release_all();
  /// Adds a fixed delay to every flush of `shard` (a slow shard, not a dead
  /// one).  Zero disables.
  void set_delay(std::size_t shard, std::chrono::microseconds delay);

  /// Blocks until `shard`'s consumer thread is parked inside a stall.
  void wait_until_stalled(std::size_t shard);
  bool stalled(std::size_t shard) const;

  /// Hook invoked by the shard's sink wrapper (consumer thread): applies the
  /// delay, then parks while the shard is stalled.
  void on_flush(std::size_t shard);

 private:
  struct State {
    bool stalled = false;
    bool parked = false;  // consumer is currently frozen inside on_flush
    std::chrono::microseconds delay{0};
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<State> states_;
};

struct ShardedServiceConfig {
  std::size_t shards = 4;
  /// Applied to every shard's StreamIngestor (queue capacity, backpressure
  /// policy, flush threshold, row width).
  IngestorConfig ingest;
  /// Applied to every shard's OnlineScorer.  `scorer.pool` is ignored — each
  /// shard gets its own pool of `scorer_threads` workers (0 shares the
  /// process-global pool across shards instead).
  OnlineScorerConfig scorer;
  EventBusConfig bus;
  std::size_t scorer_threads = 1;
  /// Fleet-wide admission budget: when the batches queued across all shard
  /// ingest queues reach this bound, the dispatcher sheds the incoming batch
  /// outright (service-level DropNewest) instead of letting one hot shard
  /// stall the fleet.  0 = unlimited (per-shard policies still apply).
  std::size_t max_total_queued_batches = 0;
  /// Query admission: maximum concurrent analyze_job requests.  0 =
  /// unlimited.  Block parks excess callers; any other policy sheds them
  /// (analyze_job returns nullopt).
  std::size_t max_concurrent_queries = 0;
  BackpressurePolicy query_admission = BackpressurePolicy::Block;
  /// Per-shard result-cache capacity (each shard keys by its own store
  /// generation, so re-ingest invalidates exactly that shard's entries).
  std::size_t cache_capacity = 128;
  /// Batch-path preprocessing for the per-shard AnalyticsService queries.
  pipeline::PreprocessOptions preprocess;
  /// Online adaptation: when set, every shard gets its own ModelProvider
  /// built by this factory (shard index, the shard's initial bundle, the
  /// shared event bus) and scores through its leases; the shard's query
  /// service follows the provider's generation (see analyze_job).  Unset =
  /// frozen per-shard bundles, bit-identical to pre-adaptation behavior.
  /// `scorer.model_provider` is ignored — per-shard providers replace it.
  ModelProviderFactory adaptation;
};

/// Fleet-wide sample/query accounting.  `per_shard[k]` is shard k's own
/// IngestorStats; `totals` sums them.  The invariant (see file comment)
/// balances offered against shed + the shard terminal buckets.
struct ShardedStats {
  std::uint64_t offered_samples = 0;  // arrived at the dispatcher
  std::uint64_t shed_samples = 0;     // dispatcher admission or dead shard
  std::uint64_t queries = 0;          // admitted analyze_job calls
  std::uint64_t queries_shed = 0;     // rejected by query admission
  IngestorStats totals;
  std::vector<IngestorStats> per_shard;

  bool accounting_balances() const noexcept {
    return offered_samples ==
           shed_samples + totals.flushed_samples + totals.dropped_samples +
               totals.duplicate_samples + totals.late_samples +
               totals.malformed_samples;
  }
};

class ShardedAnalyticsService {
 public:
  /// Owns a copy of the bundle per shard.  `faults` (optional) must outlive
  /// the service.  Consumer threads start immediately.  Explanations are a
  /// single-shard feature for now: sharded verdicts carry scores and flags
  /// only.
  explicit ShardedAnalyticsService(core::ModelBundle bundle,
                                   ShardedServiceConfig config = {},
                                   ShardFaultInjector* faults = nullptr);
  ~ShardedAnalyticsService();

  ShardedAnalyticsService(const ShardedAnalyticsService&) = delete;
  ShardedAnalyticsService& operator=(const ShardedAnalyticsService&) = delete;

  /// Streaming front door (any thread): routes each row to its node's shard
  /// and forwards per-shard sub-batches.  Returns false when anything was
  /// shed or rejected (fleet admission, dead shard, or a shard's DropNewest
  /// queue); rejected rows are fully accounted either way.
  bool offer(const SampleBatch& batch);

  /// Query front door (any thread): fans the job out to every shard holding
  /// any of its nodes and merges the per-shard verdicts in component order —
  /// bit-identical to the single-shard analysis.  Returns nullopt when query
  /// admission sheds the request.  Throws std::out_of_range for a job no
  /// shard knows.
  std::optional<deploy::JobAnalysis> analyze_job(std::int64_t job_id) const;

  /// Stops every shard gracefully (drain queues, flush, join) and drains all
  /// scorers.  Releases any injected stalls first (shutdown outranks faults;
  /// a frozen consumer cannot drain).  Idempotent.
  void stop();
  /// Blocks until every scheduled window has been scored and published.
  void drain();

  /// Fault injection: kills one shard as a crash would — its queued and
  /// pending samples are counted dropped, and the dispatcher sheds
  /// everything routed to it from now on.  A stalled shard is released
  /// first (a frozen consumer cannot be joined).
  void crash_shard(std::size_t shard);
  bool shard_alive(std::size_t shard) const;

  EventBus& bus() noexcept { return bus_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t shard_of_node(std::int64_t job_id,
                            std::int64_t component_id) const noexcept {
    return deploy::shard_of(job_id, component_id, shards_.size());
  }

  /// Shard-local views for tests and benchmarks.
  const deploy::DsosStore& shard_store(std::size_t shard) const;
  std::size_t shard_queue_depth(std::size_t shard) const;
  std::uint64_t shard_windows_scored(std::size_t shard) const;

  ShardedStats stats() const;
  std::uint64_t windows_scored() const;
  std::uint64_t score_errors() const;

  /// Fleet drift rollup: per-shard adaptation counters plus their sum
  /// (totals.generation is the max generation across shards).  All zeros
  /// when adaptation is off.
  struct FleetAdaptationStats {
    AdaptationStats totals;
    std::vector<AdaptationStats> per_shard;
  };
  FleetAdaptationStats adaptation_stats() const;
  /// Active model generation of one shard (0 = adaptation off).
  std::uint64_t shard_model_generation(std::size_t shard) const;

 private:
  /// RowSink wrapper threading the fault hook in front of the scorer.
  class ShardSink;
  struct Shard;

  struct QueryGate {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::size_t in_flight = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
  };

  ShardedServiceConfig config_;
  ShardFaultInjector* faults_;
  EventBus bus_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> offered_samples_{0};
  std::atomic<std::uint64_t> shed_samples_{0};
  mutable QueryGate query_gate_;

  util::Counter* shed_counter_ = nullptr;
  util::Counter* query_shed_counter_ = nullptr;
};

}  // namespace prodigy::stream
