// Streaming ingest (paper Fig. 4, the live half of the deployment loop):
// producers (ldmsd aggregators, the replay tool, tests) offer SampleBatches
// into a bounded MPSC queue; one consumer thread reorders and deduplicates
// per-node rows by timestamp and flushes them in batches into the DsosStore
// append path, forwarding the appended rows to an optional RowSink (the
// online scorer).
//
// Backpressure mirrors LDMS "dropped samples" semantics: when the queue is
// full, Block stalls the producer, DropOldest evicts the oldest queued
// batch, DropNewest rejects the incoming one.  Every offered sample ends up
// in exactly one accounting bucket (flushed, dropped, duplicate, late, or
// malformed), so `stats()` always balances against what producers sent.
#pragma once

#include "deploy/dsos.hpp"
#include "stream/sample_batch.hpp"
#include "tensor/matrix.hpp"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <thread>

namespace prodigy::stream {

enum class BackpressurePolicy { Block, DropOldest, DropNewest };

std::string to_string(BackpressurePolicy policy);
/// Parses "block" / "drop-oldest" / "drop-newest"; throws std::invalid_argument.
BackpressurePolicy backpressure_policy_from_string(const std::string& name);

/// Consumer-side hook: receives every flushed run of rows for one node, on
/// the ingestor's consumer thread, *after* the rows landed in the store.
/// `timestamps` and the matrix rows are aligned and sorted ascending.
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual void on_rows(std::int64_t job_id, std::int64_t component_id,
                       const std::string& app,
                       std::span<const std::int64_t> timestamps,
                       const tensor::Matrix& rows) = 0;
};

struct IngestorConfig {
  std::size_t queue_capacity = 256;  // batches
  BackpressurePolicy policy = BackpressurePolicy::Block;
  /// Pending rows (across all nodes) that force a store flush; the consumer
  /// also flushes whenever it catches up with the queue, so a paced stream
  /// stays fresh while a firehose amortizes store locking.
  std::size_t flush_rows = 512;
  /// Expected row width; rows of any other width are counted malformed and
  /// dropped (a daemon must not die on one bad frame).
  std::size_t columns = 0;  // 0 -> telemetry::metric_count()
};

/// Monotonic sample accounting (one terminal bucket per offered sample):
/// offered == flushed + dropped + duplicate + late + malformed once the
/// ingestor is stopped and drained.
struct IngestorStats {
  std::uint64_t offered_samples = 0;
  std::uint64_t flushed_samples = 0;
  std::uint64_t dropped_samples = 0;    // backpressure (or offered post-stop)
  std::uint64_t duplicate_samples = 0;  // same (node, timestamp) seen twice
  std::uint64_t late_samples = 0;       // older than the node's flush watermark
  std::uint64_t malformed_samples = 0;  // wrong row width
  std::uint64_t flushes = 0;
};

class StreamIngestor {
 public:
  /// `store` and `sink` must outlive the ingestor.  The consumer thread
  /// starts immediately.
  explicit StreamIngestor(deploy::DsosStore& store, IngestorConfig config = {},
                          RowSink* sink = nullptr);
  ~StreamIngestor();

  StreamIngestor(const StreamIngestor&) = delete;
  StreamIngestor& operator=(const StreamIngestor&) = delete;

  /// Producer API (any thread).  Returns false when the batch was rejected:
  /// DropNewest with a full queue, or the ingestor already stopped.  Under
  /// Block a full queue stalls the caller until space frees up.
  bool offer(SampleBatch batch);

  /// Stops accepting batches, drains everything queued, flushes pending rows
  /// into the store, and joins the consumer thread.  Idempotent.
  void stop();

  /// Crash simulation (fault-injection seam for the sharded service tests):
  /// stops accepting batches and joins the consumer WITHOUT draining — every
  /// queued batch and every reordered-but-unflushed pending row is counted
  /// into `dropped_samples`, exactly as a killed shard loses its in-flight
  /// work.  The accounting invariant (offered == flushed + dropped +
  /// duplicate + late + malformed) still holds afterwards.  Idempotent;
  /// stop() after abort() is a no-op.
  void abort();

  /// First half of abort(): marks the queue dying and wakes every waiter,
  /// without joining the consumer.  Lets a caller release an external stall
  /// (a fault-injection hook parked inside the sink) between the mark and the
  /// join, so the woken consumer observes the abort before touching another
  /// batch (ShardedAnalyticsService::crash_shard).  Follow with abort().
  void request_abort();

  IngestorStats stats() const;
  std::size_t queue_depth() const;
  const IngestorConfig& config() const noexcept { return config_; }

 private:
  struct PendingNode {
    std::string app;
    std::map<std::int64_t, std::vector<double>> rows;  // ts -> readings
    std::int64_t watermark = INT64_MIN;  // newest timestamp ever flushed
  };

  void consumer_loop();
  void process_batch(const SampleBatch& batch);
  void flush_pending();
  void discard_in_flight();  // consumer thread, after an abort

  deploy::DsosStore& store_;
  IngestorConfig config_;
  RowSink* sink_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<SampleBatch> queue_;
  bool stopping_ = false;
  bool aborting_ = false;  // crash path: discard instead of drain
  IngestorStats stats_;

  // Consumer-thread-only state (no lock needed).
  std::map<std::pair<std::int64_t, std::int64_t>, PendingNode> pending_;
  std::size_t pending_rows_ = 0;

  std::mutex join_mutex_;  // serializes joinable()/join() in stop()
  std::thread consumer_;
};

}  // namespace prodigy::stream
