// The seam between online scoring and online adaptation.  An OnlineScorer
// normally owns one frozen ModelBundle; plugging a ModelProvider into
// OnlineScorerConfig turns the bundle into a leased, generation-tagged
// resource: the scorer acquires one lease per window (so a single window can
// never observe a torn model across a hot-swap) and feeds every published
// verdict — together with the model-input feature row it was scored from —
// back to the provider, which is how the adapt subsystem sees the live
// stream without the scorer depending on it.
//
// Generation 0 is reserved for "no provider" (the frozen, scorer-owned
// bundle); providers hand out generations >= 1 and must bump the generation
// on every swap so downstream consumers (EventBus debouncing, the analytics
// result cache) can tell pre- and post-swap results apart.
#pragma once

#include "core/model_trainer.hpp"
#include "stream/event_bus.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

namespace prodigy::stream {

/// Rolled-up adaptation counters of one provider (or, summed, of a fleet).
struct AdaptationStats {
  std::uint64_t generation = 0;        // active model generation (>= 1)
  std::uint64_t drifts_detected = 0;   // drift monitor flags
  std::uint64_t refits_started = 0;    // background refit cycles begun
  std::uint64_t swaps_completed = 0;   // candidates promoted
  std::uint64_t swaps_refused = 0;     // candidates rejected by validation
  std::uint64_t reservoir_samples = 0; // healthy rows currently held
  std::uint64_t reservoir_offered = 0; // healthy rows ever offered
};

class ModelProvider {
 public:
  /// A consistent (bundle, generation) pair.  The shared_ptr keeps the
  /// bundle alive for the lease's lifetime even if the provider swaps a new
  /// generation in concurrently.
  struct Lease {
    std::shared_ptr<const core::ModelBundle> bundle;
    std::uint64_t generation = 0;
  };

  virtual ~ModelProvider() = default;

  /// The current model.  Thread-safe; never returns a null bundle.
  virtual Lease acquire() const = 0;

  /// Feedback path, called by the scorer after each verdict is published.
  /// `model_input` is the scored row in model-input space (post column
  /// selection + scaling), valid only for the duration of the call.
  /// Thread-safe; per-node calls arrive in window order.
  virtual void on_verdict(const VerdictEvent& event,
                          std::span<const double> model_input) = 0;

  virtual AdaptationStats adaptation_stats() const { return {}; }
};

/// Builds one provider per shard for ShardedAnalyticsService: called with
/// the shard index, the shard's initial bundle, and the shared event bus the
/// provider should publish drift events on.
using ModelProviderFactory = std::function<std::unique_ptr<ModelProvider>(
    std::size_t shard, const core::ModelBundle& bundle, EventBus& bus)>;

}  // namespace prodigy::stream
