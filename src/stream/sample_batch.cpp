#include "stream/sample_batch.hpp"

namespace prodigy::stream {

namespace {
constexpr std::uint64_t kFrameMagic = 0x50524f44534d5042ULL;  // "PRODSMPB"
}

void SampleBatch::write_frame(util::BinaryWriter& writer) const {
  writer.write_magic(kFrameMagic, 1);
  writer.write_u64(sequence);
  writer.write_u64(rows.size());
  for (const auto& row : rows) {
    writer.write_i64(row.job_id);
    writer.write_i64(row.component_id);
    writer.write_i64(row.timestamp);
    writer.write_string(row.app);
    writer.write_f64_vector(row.values);
  }
}

SampleBatch SampleBatch::read_frame(util::BinaryReader& reader) {
  reader.expect_magic(kFrameMagic, 1);
  SampleBatch batch;
  batch.sequence = reader.read_u64();
  const auto count = reader.read_u64();
  batch.rows.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SampleRow row;
    row.job_id = reader.read_i64();
    row.component_id = reader.read_i64();
    row.timestamp = reader.read_i64();
    row.app = reader.read_string();
    row.values = reader.read_f64_vector();
    batch.rows.push_back(std::move(row));
  }
  return batch;
}

}  // namespace prodigy::stream
