#include "stream/event_bus.hpp"

#include "util/metrics.hpp"

#include <stdexcept>

namespace prodigy::stream {

EventBus::EventBus(EventBusConfig config) : config_(config) {
  if (config_.debounce_windows == 0) {
    throw std::invalid_argument("EventBus: debounce_windows must be > 0");
  }
}

std::uint64_t EventBus::subscribe(VerdictSink sink) {
  std::lock_guard lock(mutex_);
  const auto id = next_id_++;
  verdict_sinks_[id] = std::make_shared<const VerdictSink>(std::move(sink));
  return id;
}

std::uint64_t EventBus::subscribe_transitions(TransitionSink sink) {
  std::lock_guard lock(mutex_);
  const auto id = next_id_++;
  transition_sinks_[id] = std::make_shared<const TransitionSink>(std::move(sink));
  return id;
}

std::uint64_t EventBus::subscribe_drift(DriftSink sink) {
  std::lock_guard lock(mutex_);
  const auto id = next_id_++;
  drift_sinks_[id] = std::make_shared<const DriftSink>(std::move(sink));
  return id;
}

void EventBus::unsubscribe(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  verdict_sinks_.erase(id);
  transition_sinks_.erase(id);
  drift_sinks_.erase(id);
}

void EventBus::publish(const VerdictEvent& event) {
  auto& registry = util::MetricsRegistry::global();
  std::vector<std::shared_ptr<const VerdictSink>> verdict_sinks;
  std::vector<std::shared_ptr<const TransitionSink>> transition_sinks;
  TransitionEvent transition;
  bool emit = false;
  {
    std::lock_guard lock(mutex_);
    ++verdicts_;
    NodeState& node = nodes_[{event.job_id, event.component_id}];
    if (event.model_generation != node.model_generation) {
      // Model hot-swap: a pre-swap near-flip says nothing about the new
      // model's view of this node, so the candidate streak restarts.  The
      // settled state is kept — swapping models is not a health change.
      node.candidate.reset();
      node.candidate_count = 0;
      node.model_generation = event.model_generation;
    }
    const bool s = event.anomalous;
    if (node.state.has_value() && s == *node.state) {
      // Verdict agrees with the settled state; any pending flip is broken.
      node.candidate.reset();
      node.candidate_count = 0;
      ++suppressed_;
    } else {
      if (node.candidate.has_value() && *node.candidate == s) {
        ++node.candidate_count;
      } else {
        node.candidate = s;
        node.candidate_count = 1;
      }
      if (node.candidate_count >= config_.debounce_windows) {
        transition.job_id = event.job_id;
        transition.component_id = event.component_id;
        transition.app = event.app;
        transition.anomalous = s;
        transition.initial = !node.state.has_value();
        transition.window_index = event.window_index;
        transition.window_start_ts = event.window_start_ts;
        transition.window_end_ts = event.window_end_ts;
        transition.score = event.score;
        transition.threshold = event.threshold;
        transition.consecutive = node.candidate_count;
        transition.model_generation = event.model_generation;
        node.state = s;
        node.candidate.reset();
        node.candidate_count = 0;
        ++transitions_;
        emit = true;
      } else {
        ++suppressed_;
      }
    }
    verdict_sinks.reserve(verdict_sinks_.size());
    for (const auto& [id, sink] : verdict_sinks_) verdict_sinks.push_back(sink);
    if (emit) {
      transition_sinks.reserve(transition_sinks_.size());
      for (const auto& [id, sink] : transition_sinks_) {
        transition_sinks.push_back(sink);
      }
    }
  }
  registry.counter("prodigy_stream_verdicts_total").increment();
  if (emit) {
    registry.counter("prodigy_stream_transitions_total").increment();
  } else {
    registry.counter("prodigy_stream_debounce_suppressed_total").increment();
  }
  // Dispatch outside the lock: sinks may be slow (stdout, network) or call
  // back into the bus.
  for (const auto& sink : verdict_sinks) (*sink)(event);
  if (emit) {
    for (const auto& sink : transition_sinks) (*sink)(transition);
  }
}

void EventBus::publish(const DriftEvent& event) {
  std::vector<std::shared_ptr<const DriftSink>> sinks;
  {
    std::lock_guard lock(mutex_);
    ++drift_events_;
    sinks.reserve(drift_sinks_.size());
    for (const auto& [id, sink] : drift_sinks_) sinks.push_back(sink);
  }
  util::MetricsRegistry::global()
      .counter("prodigy_stream_drift_events_total")
      .increment();
  for (const auto& sink : sinks) (*sink)(event);
}

std::optional<bool> EventBus::node_state(std::int64_t job_id,
                                         std::int64_t component_id) const {
  std::lock_guard lock(mutex_);
  const auto it = nodes_.find({job_id, component_id});
  return it == nodes_.end() ? std::nullopt : it->second.state;
}

std::uint64_t EventBus::verdicts_published() const {
  std::lock_guard lock(mutex_);
  return verdicts_;
}

std::uint64_t EventBus::transitions_published() const {
  std::lock_guard lock(mutex_);
  return transitions_;
}

std::uint64_t EventBus::drift_events_published() const {
  std::lock_guard lock(mutex_);
  return drift_events_;
}

std::uint64_t EventBus::suppressed() const {
  std::lock_guard lock(mutex_);
  return suppressed_;
}

}  // namespace prodigy::stream
