#include "stream/ingestor.hpp"

#include "telemetry/metrics.hpp"
#include "util/metrics.hpp"

#include <stdexcept>
#include <utility>

namespace prodigy::stream {

std::string to_string(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::Block: return "block";
    case BackpressurePolicy::DropOldest: return "drop-oldest";
    case BackpressurePolicy::DropNewest: return "drop-newest";
  }
  return "unknown";
}

BackpressurePolicy backpressure_policy_from_string(const std::string& name) {
  if (name == "block") return BackpressurePolicy::Block;
  if (name == "drop-oldest") return BackpressurePolicy::DropOldest;
  if (name == "drop-newest") return BackpressurePolicy::DropNewest;
  throw std::invalid_argument("unknown backpressure policy: " + name);
}

namespace {

struct IngestMetrics {
  util::Counter* offered;
  util::Counter* flushed;
  util::Counter* dropped;
  util::Counter* duplicate;
  util::Counter* late;
  util::Counter* malformed;
  util::Counter* flushes;
  util::Gauge* queue_depth;
  util::Gauge* queue_high_water;

  static IngestMetrics& instance() {
    static IngestMetrics metrics = [] {
      auto& registry = util::MetricsRegistry::global();
      IngestMetrics m;
      m.offered = &registry.counter("prodigy_stream_samples_offered_total");
      m.flushed = &registry.counter("prodigy_stream_samples_flushed_total");
      m.dropped = &registry.counter("prodigy_stream_samples_dropped_total");
      m.duplicate = &registry.counter("prodigy_stream_samples_duplicate_total");
      m.late = &registry.counter("prodigy_stream_samples_late_total");
      m.malformed = &registry.counter("prodigy_stream_samples_malformed_total");
      m.flushes = &registry.counter("prodigy_stream_flushes_total");
      m.queue_depth = &registry.gauge("prodigy_stream_queue_depth");
      m.queue_high_water = &registry.gauge("prodigy_stream_queue_depth_high_water");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

StreamIngestor::StreamIngestor(deploy::DsosStore& store, IngestorConfig config,
                               RowSink* sink)
    : store_(store), config_(config), sink_(sink) {
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("StreamIngestor: queue_capacity must be > 0");
  }
  if (config_.columns == 0) config_.columns = telemetry::metric_count();
  consumer_ = std::thread([this] { consumer_loop(); });
}

StreamIngestor::~StreamIngestor() { stop(); }

bool StreamIngestor::offer(SampleBatch batch) {
  auto& metrics = IngestMetrics::instance();
  const std::uint64_t samples = batch.sample_count();
  metrics.offered->increment(samples);

  std::unique_lock lock(mutex_);
  stats_.offered_samples += samples;
  if (stopping_) {
    stats_.dropped_samples += samples;
    metrics.dropped->increment(samples);
    return false;
  }
  if (queue_.size() >= config_.queue_capacity) {
    switch (config_.policy) {
      case BackpressurePolicy::Block:
        not_full_.wait(lock, [&] {
          return stopping_ || queue_.size() < config_.queue_capacity;
        });
        if (stopping_) {
          stats_.dropped_samples += samples;
          metrics.dropped->increment(samples);
          return false;
        }
        break;
      case BackpressurePolicy::DropOldest: {
        const std::uint64_t evicted = queue_.front().sample_count();
        queue_.pop_front();
        stats_.dropped_samples += evicted;
        metrics.dropped->increment(evicted);
        break;
      }
      case BackpressurePolicy::DropNewest:
        stats_.dropped_samples += samples;
        metrics.dropped->increment(samples);
        return false;
    }
  }
  queue_.push_back(std::move(batch));
  const auto depth = static_cast<double>(queue_.size());
  metrics.queue_depth->set(depth);
  metrics.queue_high_water->update_max(depth);
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

void StreamIngestor::consumer_loop() {
  auto& metrics = IngestMetrics::instance();
  for (;;) {
    SampleBatch batch;
    bool idle = false;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (aborting_) {
        lock.unlock();
        discard_in_flight();
        return;
      }
      if (queue_.empty()) break;  // stopping and fully drained
      batch = std::move(queue_.front());
      queue_.pop_front();
      idle = queue_.empty();
      metrics.queue_depth->set(static_cast<double>(queue_.size()));
    }
    not_full_.notify_one();
    process_batch(batch);
    // Flush on pressure (amortized store locking for a firehose) or when
    // caught up (per-tick freshness for a paced stream).
    if (pending_rows_ >= config_.flush_rows || idle) flush_pending();
  }
  flush_pending();  // drain in-flight rows on shutdown
}

void StreamIngestor::process_batch(const SampleBatch& batch) {
  auto& metrics = IngestMetrics::instance();
  std::uint64_t duplicate = 0, late = 0, malformed = 0;
  for (const auto& row : batch.rows) {
    if (row.values.size() != config_.columns) {
      ++malformed;
      continue;
    }
    PendingNode& node = pending_[{row.job_id, row.component_id}];
    if (row.timestamp <= node.watermark) {
      ++late;
      continue;
    }
    const auto [it, inserted] = node.rows.try_emplace(row.timestamp, row.values);
    if (!inserted) {
      ++duplicate;
      continue;
    }
    node.app = row.app;
    ++pending_rows_;
  }
  if (duplicate + late + malformed > 0) {
    metrics.duplicate->increment(duplicate);
    metrics.late->increment(late);
    metrics.malformed->increment(malformed);
    std::lock_guard lock(mutex_);
    stats_.duplicate_samples += duplicate;
    stats_.late_samples += late;
    stats_.malformed_samples += malformed;
  }
}

void StreamIngestor::flush_pending() {
  if (pending_rows_ == 0) return;
  auto& metrics = IngestMetrics::instance();
  std::uint64_t flushed = 0, flushes = 0, malformed = 0;
  for (auto& [key, node] : pending_) {
    if (node.rows.empty()) continue;
    const std::size_t count = node.rows.size();
    std::vector<std::int64_t> timestamps;
    timestamps.reserve(count);
    tensor::Matrix values(count, config_.columns);
    std::size_t r = 0;
    for (const auto& [ts, readings] : node.rows) {  // map order == time order
      timestamps.push_back(ts);
      values.set_row(r++, readings);
    }
    node.watermark = timestamps.back();
    node.rows.clear();

    telemetry::NodeSeries delta;
    delta.job_id = key.first;
    delta.component_id = key.second;
    delta.app = node.app;
    delta.values = std::move(values);
    try {
      store_.append_node(delta);
    } catch (const std::invalid_argument&) {
      // The store already holds this node with a different width (foreign
      // ingest); account the rows and keep the daemon alive.
      malformed += count;
      continue;
    }
    if (sink_ != nullptr) {
      sink_->on_rows(key.first, key.second, node.app, timestamps, delta.values);
    }
    flushed += count;
    ++flushes;
  }
  pending_rows_ = 0;
  metrics.flushed->increment(flushed);
  metrics.flushes->increment(flushes);
  metrics.malformed->increment(malformed);
  std::lock_guard lock(mutex_);
  stats_.flushed_samples += flushed;
  stats_.flushes += flushes;
  stats_.malformed_samples += malformed;
}

void StreamIngestor::discard_in_flight() {
  // Consumer thread only, after aborting_ was observed: everything queued and
  // every reordered-but-unflushed row dies here, accounted as dropped.
  auto& metrics = IngestMetrics::instance();
  std::uint64_t lost = 0;
  for (const auto& [key, node] : pending_) lost += node.rows.size();
  pending_.clear();
  pending_rows_ = 0;
  std::lock_guard lock(mutex_);
  for (const auto& queued : queue_) lost += queued.sample_count();
  queue_.clear();
  metrics.queue_depth->set(0.0);
  metrics.dropped->increment(lost);
  stats_.dropped_samples += lost;
}

void StreamIngestor::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // joinable()/join() are not thread-safe against each other; serialize so
  // stop() is idempotent and callable from any thread (and the destructor).
  std::lock_guard join_lock(join_mutex_);
  if (consumer_.joinable()) consumer_.join();
}

void StreamIngestor::request_abort() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    aborting_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

void StreamIngestor::abort() {
  request_abort();
  std::lock_guard join_lock(join_mutex_);
  if (consumer_.joinable()) consumer_.join();
}

IngestorStats StreamIngestor::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t StreamIngestor::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace prodigy::stream
