// The streaming wire format: one SampleBatch is what an ldmsd aggregator
// flushes per collection tick — a frame of per-node sample rows over the
// metric catalog.  Frames are self-delimiting (magic + version + counts) so
// a capture file is just consecutive frames and a reader iterates with
// BinaryReader::at_end().
#pragma once

#include "util/serialize.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace prodigy::stream {

/// One node's readings at one timestamp, in metric-catalog column order.
/// `timestamp` is the 1 Hz sample tick (seconds since the job started).
struct SampleRow {
  std::int64_t job_id = 0;
  std::int64_t component_id = 0;
  std::int64_t timestamp = 0;
  std::string app;
  std::vector<double> values;  // width = metric catalog size; NaN = lost reading
};

/// A framed batch of sample rows (typically one row per node per tick).
struct SampleBatch {
  std::uint64_t sequence = 0;  // producer frame counter, for gap diagnostics
  std::vector<SampleRow> rows;

  std::size_t sample_count() const noexcept { return rows.size(); }

  /// Appends this batch as one frame to the writer's stream.
  void write_frame(util::BinaryWriter& writer) const;

  /// Reads one frame; throws std::runtime_error on a foreign/corrupt frame.
  static SampleBatch read_frame(util::BinaryReader& reader);
};

}  // namespace prodigy::stream
