// Per-(job, component) sliding-window state for online scoring: a ring
// buffer of the last W sample rows.  Window k (0-based) covers pushed rows
// [k*H, k*H + W); it becomes ready exactly when its last row arrives, so a
// caller that drains ready windows after every push never loses one to ring
// overwrite (Borghesi et al., arXiv:1902.08447: per-node autoencoder scoring
// over sliding windows of live telemetry).
#pragma once

#include "tensor/matrix.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace prodigy::stream {

/// Identity of one emitted window: its ordinal and the timestamps of its
/// first/last rows (inclusive).
struct WindowSpan {
  std::uint64_t index = 0;
  std::int64_t start_ts = 0;
  std::int64_t end_ts = 0;
};

class WindowState {
 public:
  /// `window` rows per emitted window, advancing by `hop` rows.  hop may
  /// exceed window (disjoint windows with a gap).
  WindowState(std::size_t window, std::size_t hop, std::size_t cols);

  void push_row(std::int64_t timestamp, std::span<const double> row);

  /// True when the oldest unemitted window is complete.  Drain with pop()
  /// after each push; letting more than `hop` rows accumulate past a ready
  /// window overwrites its rows (pop() then throws std::logic_error).
  bool ready() const noexcept;

  /// Copies the oldest ready window into `out` (resized to window x cols,
  /// rows in time order) and returns its span.
  WindowSpan pop(tensor::Matrix& out);

  /// Delta form of pop() for incremental consumers: emits the same window
  /// (same span, same ordinal) but copies only the rows NOT already
  /// delivered by the previous pop_delta/pop — `hop` rows in steady state
  /// (when hop < window), the full window for the first emission or when
  /// hop >= window.  `out` is resized to (delta_rows x cols), rows in time
  /// order ending at the window's last row.  The returned span still
  /// describes the FULL window.  Same drain contract and overwrite check
  /// as pop(); mixing pop() and pop_delta() on one WindowState keeps the
  /// ordinals consistent but makes the next delta relative to the last
  /// emission, so consumers should pick one form and stick to it.
  WindowSpan pop_delta(tensor::Matrix& out);

  std::size_t window() const noexcept { return window_; }
  std::size_t hop() const noexcept { return hop_; }
  std::uint64_t rows_pushed() const noexcept { return pushed_; }
  std::uint64_t windows_emitted() const noexcept { return emitted_; }

 private:
  std::size_t window_;
  std::size_t hop_;
  std::size_t cols_;
  tensor::Matrix ring_;                 // (window x cols), slot = pushed % window
  std::vector<std::int64_t> ring_ts_;   // aligned timestamps
  std::uint64_t pushed_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace prodigy::stream
