# Empty compiler generated dependencies file for prodigy_predict.
# This may be replaced when dependencies are built.
