file(REMOVE_RECURSE
  "CMakeFiles/prodigy_predict.dir/prodigy_predict.cpp.o"
  "CMakeFiles/prodigy_predict.dir/prodigy_predict.cpp.o.d"
  "prodigy_predict"
  "prodigy_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
