# Empty compiler generated dependencies file for prodigy_simulate.
# This may be replaced when dependencies are built.
