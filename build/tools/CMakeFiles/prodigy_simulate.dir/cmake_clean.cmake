file(REMOVE_RECURSE
  "CMakeFiles/prodigy_simulate.dir/prodigy_simulate.cpp.o"
  "CMakeFiles/prodigy_simulate.dir/prodigy_simulate.cpp.o.d"
  "prodigy_simulate"
  "prodigy_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
