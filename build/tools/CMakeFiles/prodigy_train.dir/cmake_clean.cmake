file(REMOVE_RECURSE
  "CMakeFiles/prodigy_train.dir/prodigy_train.cpp.o"
  "CMakeFiles/prodigy_train.dir/prodigy_train.cpp.o.d"
  "prodigy_train"
  "prodigy_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
