# Empty dependencies file for prodigy_train.
# This may be replaced when dependencies are built.
