file(REMOVE_RECURSE
  "CMakeFiles/deployment_pipeline.dir/deployment_pipeline.cpp.o"
  "CMakeFiles/deployment_pipeline.dir/deployment_pipeline.cpp.o.d"
  "deployment_pipeline"
  "deployment_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
