# Empty dependencies file for deployment_pipeline.
# This may be replaced when dependencies are built.
