# Empty compiler generated dependencies file for monitoring_daemon.
# This may be replaced when dependencies are built.
