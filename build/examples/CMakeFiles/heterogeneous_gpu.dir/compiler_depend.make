# Empty compiler generated dependencies file for heterogeneous_gpu.
# This may be replaced when dependencies are built.
