file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_gpu.dir/heterogeneous_gpu.cpp.o"
  "CMakeFiles/heterogeneous_gpu.dir/heterogeneous_gpu.cpp.o.d"
  "heterogeneous_gpu"
  "heterogeneous_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
