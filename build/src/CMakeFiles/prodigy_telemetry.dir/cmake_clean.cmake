file(REMOVE_RECURSE
  "CMakeFiles/prodigy_telemetry.dir/telemetry/app_profile.cpp.o"
  "CMakeFiles/prodigy_telemetry.dir/telemetry/app_profile.cpp.o.d"
  "CMakeFiles/prodigy_telemetry.dir/telemetry/dataset_builder.cpp.o"
  "CMakeFiles/prodigy_telemetry.dir/telemetry/dataset_builder.cpp.o.d"
  "CMakeFiles/prodigy_telemetry.dir/telemetry/generator.cpp.o"
  "CMakeFiles/prodigy_telemetry.dir/telemetry/generator.cpp.o.d"
  "CMakeFiles/prodigy_telemetry.dir/telemetry/gpu.cpp.o"
  "CMakeFiles/prodigy_telemetry.dir/telemetry/gpu.cpp.o.d"
  "CMakeFiles/prodigy_telemetry.dir/telemetry/metrics.cpp.o"
  "CMakeFiles/prodigy_telemetry.dir/telemetry/metrics.cpp.o.d"
  "libprodigy_telemetry.a"
  "libprodigy_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
