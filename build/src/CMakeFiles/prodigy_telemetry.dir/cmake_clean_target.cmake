file(REMOVE_RECURSE
  "libprodigy_telemetry.a"
)
