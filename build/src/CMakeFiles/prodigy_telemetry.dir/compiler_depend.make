# Empty compiler generated dependencies file for prodigy_telemetry.
# This may be replaced when dependencies are built.
