
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/app_profile.cpp" "src/CMakeFiles/prodigy_telemetry.dir/telemetry/app_profile.cpp.o" "gcc" "src/CMakeFiles/prodigy_telemetry.dir/telemetry/app_profile.cpp.o.d"
  "/root/repo/src/telemetry/dataset_builder.cpp" "src/CMakeFiles/prodigy_telemetry.dir/telemetry/dataset_builder.cpp.o" "gcc" "src/CMakeFiles/prodigy_telemetry.dir/telemetry/dataset_builder.cpp.o.d"
  "/root/repo/src/telemetry/generator.cpp" "src/CMakeFiles/prodigy_telemetry.dir/telemetry/generator.cpp.o" "gcc" "src/CMakeFiles/prodigy_telemetry.dir/telemetry/generator.cpp.o.d"
  "/root/repo/src/telemetry/gpu.cpp" "src/CMakeFiles/prodigy_telemetry.dir/telemetry/gpu.cpp.o" "gcc" "src/CMakeFiles/prodigy_telemetry.dir/telemetry/gpu.cpp.o.d"
  "/root/repo/src/telemetry/metrics.cpp" "src/CMakeFiles/prodigy_telemetry.dir/telemetry/metrics.cpp.o" "gcc" "src/CMakeFiles/prodigy_telemetry.dir/telemetry/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prodigy_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_hpas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
