
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/data_generator.cpp" "src/CMakeFiles/prodigy_pipeline.dir/pipeline/data_generator.cpp.o" "gcc" "src/CMakeFiles/prodigy_pipeline.dir/pipeline/data_generator.cpp.o.d"
  "/root/repo/src/pipeline/data_pipeline.cpp" "src/CMakeFiles/prodigy_pipeline.dir/pipeline/data_pipeline.cpp.o" "gcc" "src/CMakeFiles/prodigy_pipeline.dir/pipeline/data_pipeline.cpp.o.d"
  "/root/repo/src/pipeline/preprocess.cpp" "src/CMakeFiles/prodigy_pipeline.dir/pipeline/preprocess.cpp.o" "gcc" "src/CMakeFiles/prodigy_pipeline.dir/pipeline/preprocess.cpp.o.d"
  "/root/repo/src/pipeline/scaler.cpp" "src/CMakeFiles/prodigy_pipeline.dir/pipeline/scaler.cpp.o" "gcc" "src/CMakeFiles/prodigy_pipeline.dir/pipeline/scaler.cpp.o.d"
  "/root/repo/src/pipeline/splits.cpp" "src/CMakeFiles/prodigy_pipeline.dir/pipeline/splits.cpp.o" "gcc" "src/CMakeFiles/prodigy_pipeline.dir/pipeline/splits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prodigy_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_hpas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
