file(REMOVE_RECURSE
  "CMakeFiles/prodigy_pipeline.dir/pipeline/data_generator.cpp.o"
  "CMakeFiles/prodigy_pipeline.dir/pipeline/data_generator.cpp.o.d"
  "CMakeFiles/prodigy_pipeline.dir/pipeline/data_pipeline.cpp.o"
  "CMakeFiles/prodigy_pipeline.dir/pipeline/data_pipeline.cpp.o.d"
  "CMakeFiles/prodigy_pipeline.dir/pipeline/preprocess.cpp.o"
  "CMakeFiles/prodigy_pipeline.dir/pipeline/preprocess.cpp.o.d"
  "CMakeFiles/prodigy_pipeline.dir/pipeline/scaler.cpp.o"
  "CMakeFiles/prodigy_pipeline.dir/pipeline/scaler.cpp.o.d"
  "CMakeFiles/prodigy_pipeline.dir/pipeline/splits.cpp.o"
  "CMakeFiles/prodigy_pipeline.dir/pipeline/splits.cpp.o.d"
  "libprodigy_pipeline.a"
  "libprodigy_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
