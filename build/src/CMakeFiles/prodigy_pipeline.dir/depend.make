# Empty dependencies file for prodigy_pipeline.
# This may be replaced when dependencies are built.
