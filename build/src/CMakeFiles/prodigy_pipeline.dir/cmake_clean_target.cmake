file(REMOVE_RECURSE
  "libprodigy_pipeline.a"
)
