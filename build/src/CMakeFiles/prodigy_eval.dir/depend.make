# Empty dependencies file for prodigy_eval.
# This may be replaced when dependencies are built.
