file(REMOVE_RECURSE
  "CMakeFiles/prodigy_eval.dir/eval/crossval.cpp.o"
  "CMakeFiles/prodigy_eval.dir/eval/crossval.cpp.o.d"
  "CMakeFiles/prodigy_eval.dir/eval/metrics.cpp.o"
  "CMakeFiles/prodigy_eval.dir/eval/metrics.cpp.o.d"
  "libprodigy_eval.a"
  "libprodigy_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
