file(REMOVE_RECURSE
  "libprodigy_eval.a"
)
