
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/crossval.cpp" "src/CMakeFiles/prodigy_eval.dir/eval/crossval.cpp.o" "gcc" "src/CMakeFiles/prodigy_eval.dir/eval/crossval.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/CMakeFiles/prodigy_eval.dir/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/prodigy_eval.dir/eval/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prodigy_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_hpas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
