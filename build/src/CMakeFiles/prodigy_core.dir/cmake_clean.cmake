file(REMOVE_RECURSE
  "CMakeFiles/prodigy_core.dir/core/model_trainer.cpp.o"
  "CMakeFiles/prodigy_core.dir/core/model_trainer.cpp.o.d"
  "CMakeFiles/prodigy_core.dir/core/prodigy_detector.cpp.o"
  "CMakeFiles/prodigy_core.dir/core/prodigy_detector.cpp.o.d"
  "CMakeFiles/prodigy_core.dir/core/vae.cpp.o"
  "CMakeFiles/prodigy_core.dir/core/vae.cpp.o.d"
  "libprodigy_core.a"
  "libprodigy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
