# Empty compiler generated dependencies file for prodigy_core.
# This may be replaced when dependencies are built.
