file(REMOVE_RECURSE
  "libprodigy_core.a"
)
