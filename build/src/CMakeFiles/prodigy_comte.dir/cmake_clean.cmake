file(REMOVE_RECURSE
  "CMakeFiles/prodigy_comte.dir/comte/comte.cpp.o"
  "CMakeFiles/prodigy_comte.dir/comte/comte.cpp.o.d"
  "libprodigy_comte.a"
  "libprodigy_comte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_comte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
