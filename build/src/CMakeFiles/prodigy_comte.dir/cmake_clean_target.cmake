file(REMOVE_RECURSE
  "libprodigy_comte.a"
)
