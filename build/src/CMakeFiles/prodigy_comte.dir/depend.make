# Empty dependencies file for prodigy_comte.
# This may be replaced when dependencies are built.
