# Empty dependencies file for prodigy_deploy.
# This may be replaced when dependencies are built.
