file(REMOVE_RECURSE
  "CMakeFiles/prodigy_deploy.dir/deploy/dsos.cpp.o"
  "CMakeFiles/prodigy_deploy.dir/deploy/dsos.cpp.o.d"
  "CMakeFiles/prodigy_deploy.dir/deploy/service.cpp.o"
  "CMakeFiles/prodigy_deploy.dir/deploy/service.cpp.o.d"
  "libprodigy_deploy.a"
  "libprodigy_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
