file(REMOVE_RECURSE
  "libprodigy_deploy.a"
)
