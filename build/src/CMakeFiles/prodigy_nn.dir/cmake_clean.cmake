file(REMOVE_RECURSE
  "CMakeFiles/prodigy_nn.dir/nn/activation.cpp.o"
  "CMakeFiles/prodigy_nn.dir/nn/activation.cpp.o.d"
  "CMakeFiles/prodigy_nn.dir/nn/dense.cpp.o"
  "CMakeFiles/prodigy_nn.dir/nn/dense.cpp.o.d"
  "CMakeFiles/prodigy_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/prodigy_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/prodigy_nn.dir/nn/mlp.cpp.o"
  "CMakeFiles/prodigy_nn.dir/nn/mlp.cpp.o.d"
  "CMakeFiles/prodigy_nn.dir/nn/optimizer.cpp.o"
  "CMakeFiles/prodigy_nn.dir/nn/optimizer.cpp.o.d"
  "CMakeFiles/prodigy_nn.dir/nn/trainer.cpp.o"
  "CMakeFiles/prodigy_nn.dir/nn/trainer.cpp.o.d"
  "libprodigy_nn.a"
  "libprodigy_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
