
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/CMakeFiles/prodigy_nn.dir/nn/activation.cpp.o" "gcc" "src/CMakeFiles/prodigy_nn.dir/nn/activation.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/CMakeFiles/prodigy_nn.dir/nn/dense.cpp.o" "gcc" "src/CMakeFiles/prodigy_nn.dir/nn/dense.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/prodigy_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/prodigy_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/prodigy_nn.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/prodigy_nn.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/prodigy_nn.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/prodigy_nn.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/prodigy_nn.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/prodigy_nn.dir/nn/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prodigy_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
