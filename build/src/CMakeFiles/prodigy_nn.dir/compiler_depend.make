# Empty compiler generated dependencies file for prodigy_nn.
# This may be replaced when dependencies are built.
