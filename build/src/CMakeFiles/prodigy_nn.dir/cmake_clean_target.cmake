file(REMOVE_RECURSE
  "libprodigy_nn.a"
)
