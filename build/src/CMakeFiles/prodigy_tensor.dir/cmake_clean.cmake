file(REMOVE_RECURSE
  "CMakeFiles/prodigy_tensor.dir/tensor/matrix.cpp.o"
  "CMakeFiles/prodigy_tensor.dir/tensor/matrix.cpp.o.d"
  "CMakeFiles/prodigy_tensor.dir/tensor/ops.cpp.o"
  "CMakeFiles/prodigy_tensor.dir/tensor/ops.cpp.o.d"
  "CMakeFiles/prodigy_tensor.dir/tensor/stats.cpp.o"
  "CMakeFiles/prodigy_tensor.dir/tensor/stats.cpp.o.d"
  "libprodigy_tensor.a"
  "libprodigy_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
