# Empty dependencies file for prodigy_tensor.
# This may be replaced when dependencies are built.
