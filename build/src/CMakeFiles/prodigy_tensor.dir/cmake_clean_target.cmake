file(REMOVE_RECURSE
  "libprodigy_tensor.a"
)
