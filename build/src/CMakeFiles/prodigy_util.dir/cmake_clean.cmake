file(REMOVE_RECURSE
  "CMakeFiles/prodigy_util.dir/util/csv.cpp.o"
  "CMakeFiles/prodigy_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/prodigy_util.dir/util/logging.cpp.o"
  "CMakeFiles/prodigy_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/prodigy_util.dir/util/serialize.cpp.o"
  "CMakeFiles/prodigy_util.dir/util/serialize.cpp.o.d"
  "CMakeFiles/prodigy_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/prodigy_util.dir/util/thread_pool.cpp.o.d"
  "libprodigy_util.a"
  "libprodigy_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
