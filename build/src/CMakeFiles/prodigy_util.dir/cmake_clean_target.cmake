file(REMOVE_RECURSE
  "libprodigy_util.a"
)
