# Empty dependencies file for prodigy_util.
# This may be replaced when dependencies are built.
