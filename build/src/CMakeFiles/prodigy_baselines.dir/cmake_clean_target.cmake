file(REMOVE_RECURSE
  "libprodigy_baselines.a"
)
