# Empty compiler generated dependencies file for prodigy_baselines.
# This may be replaced when dependencies are built.
