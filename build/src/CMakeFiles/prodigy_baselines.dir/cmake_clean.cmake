file(REMOVE_RECURSE
  "CMakeFiles/prodigy_baselines.dir/baselines/gmm.cpp.o"
  "CMakeFiles/prodigy_baselines.dir/baselines/gmm.cpp.o.d"
  "CMakeFiles/prodigy_baselines.dir/baselines/heuristics.cpp.o"
  "CMakeFiles/prodigy_baselines.dir/baselines/heuristics.cpp.o.d"
  "CMakeFiles/prodigy_baselines.dir/baselines/isolation_forest.cpp.o"
  "CMakeFiles/prodigy_baselines.dir/baselines/isolation_forest.cpp.o.d"
  "CMakeFiles/prodigy_baselines.dir/baselines/kmeans.cpp.o"
  "CMakeFiles/prodigy_baselines.dir/baselines/kmeans.cpp.o.d"
  "CMakeFiles/prodigy_baselines.dir/baselines/lof.cpp.o"
  "CMakeFiles/prodigy_baselines.dir/baselines/lof.cpp.o.d"
  "CMakeFiles/prodigy_baselines.dir/baselines/pca.cpp.o"
  "CMakeFiles/prodigy_baselines.dir/baselines/pca.cpp.o.d"
  "CMakeFiles/prodigy_baselines.dir/baselines/usad.cpp.o"
  "CMakeFiles/prodigy_baselines.dir/baselines/usad.cpp.o.d"
  "libprodigy_baselines.a"
  "libprodigy_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
