
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/gmm.cpp" "src/CMakeFiles/prodigy_baselines.dir/baselines/gmm.cpp.o" "gcc" "src/CMakeFiles/prodigy_baselines.dir/baselines/gmm.cpp.o.d"
  "/root/repo/src/baselines/heuristics.cpp" "src/CMakeFiles/prodigy_baselines.dir/baselines/heuristics.cpp.o" "gcc" "src/CMakeFiles/prodigy_baselines.dir/baselines/heuristics.cpp.o.d"
  "/root/repo/src/baselines/isolation_forest.cpp" "src/CMakeFiles/prodigy_baselines.dir/baselines/isolation_forest.cpp.o" "gcc" "src/CMakeFiles/prodigy_baselines.dir/baselines/isolation_forest.cpp.o.d"
  "/root/repo/src/baselines/kmeans.cpp" "src/CMakeFiles/prodigy_baselines.dir/baselines/kmeans.cpp.o" "gcc" "src/CMakeFiles/prodigy_baselines.dir/baselines/kmeans.cpp.o.d"
  "/root/repo/src/baselines/lof.cpp" "src/CMakeFiles/prodigy_baselines.dir/baselines/lof.cpp.o" "gcc" "src/CMakeFiles/prodigy_baselines.dir/baselines/lof.cpp.o.d"
  "/root/repo/src/baselines/pca.cpp" "src/CMakeFiles/prodigy_baselines.dir/baselines/pca.cpp.o" "gcc" "src/CMakeFiles/prodigy_baselines.dir/baselines/pca.cpp.o.d"
  "/root/repo/src/baselines/usad.cpp" "src/CMakeFiles/prodigy_baselines.dir/baselines/usad.cpp.o" "gcc" "src/CMakeFiles/prodigy_baselines.dir/baselines/usad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prodigy_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_hpas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
