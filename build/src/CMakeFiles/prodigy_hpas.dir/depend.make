# Empty dependencies file for prodigy_hpas.
# This may be replaced when dependencies are built.
