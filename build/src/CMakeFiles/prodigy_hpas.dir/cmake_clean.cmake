file(REMOVE_RECURSE
  "CMakeFiles/prodigy_hpas.dir/hpas/anomalies.cpp.o"
  "CMakeFiles/prodigy_hpas.dir/hpas/anomalies.cpp.o.d"
  "libprodigy_hpas.a"
  "libprodigy_hpas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_hpas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
