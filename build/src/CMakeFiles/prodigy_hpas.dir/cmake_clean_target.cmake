file(REMOVE_RECURSE
  "libprodigy_hpas.a"
)
