file(REMOVE_RECURSE
  "CMakeFiles/prodigy_features.dir/features/chi_square.cpp.o"
  "CMakeFiles/prodigy_features.dir/features/chi_square.cpp.o.d"
  "CMakeFiles/prodigy_features.dir/features/extractors.cpp.o"
  "CMakeFiles/prodigy_features.dir/features/extractors.cpp.o.d"
  "CMakeFiles/prodigy_features.dir/features/feature_matrix.cpp.o"
  "CMakeFiles/prodigy_features.dir/features/feature_matrix.cpp.o.d"
  "CMakeFiles/prodigy_features.dir/features/fft.cpp.o"
  "CMakeFiles/prodigy_features.dir/features/fft.cpp.o.d"
  "CMakeFiles/prodigy_features.dir/features/registry.cpp.o"
  "CMakeFiles/prodigy_features.dir/features/registry.cpp.o.d"
  "libprodigy_features.a"
  "libprodigy_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
