file(REMOVE_RECURSE
  "libprodigy_features.a"
)
