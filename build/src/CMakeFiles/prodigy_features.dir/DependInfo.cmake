
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/chi_square.cpp" "src/CMakeFiles/prodigy_features.dir/features/chi_square.cpp.o" "gcc" "src/CMakeFiles/prodigy_features.dir/features/chi_square.cpp.o.d"
  "/root/repo/src/features/extractors.cpp" "src/CMakeFiles/prodigy_features.dir/features/extractors.cpp.o" "gcc" "src/CMakeFiles/prodigy_features.dir/features/extractors.cpp.o.d"
  "/root/repo/src/features/feature_matrix.cpp" "src/CMakeFiles/prodigy_features.dir/features/feature_matrix.cpp.o" "gcc" "src/CMakeFiles/prodigy_features.dir/features/feature_matrix.cpp.o.d"
  "/root/repo/src/features/fft.cpp" "src/CMakeFiles/prodigy_features.dir/features/fft.cpp.o" "gcc" "src/CMakeFiles/prodigy_features.dir/features/fft.cpp.o.d"
  "/root/repo/src/features/registry.cpp" "src/CMakeFiles/prodigy_features.dir/features/registry.cpp.o" "gcc" "src/CMakeFiles/prodigy_features.dir/features/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prodigy_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_hpas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
