# Empty compiler generated dependencies file for prodigy_features.
# This may be replaced when dependencies are built.
