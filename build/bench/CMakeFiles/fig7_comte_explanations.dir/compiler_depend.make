# Empty compiler generated dependencies file for fig7_comte_explanations.
# This may be replaced when dependencies are built.
