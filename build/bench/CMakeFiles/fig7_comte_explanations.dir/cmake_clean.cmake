file(REMOVE_RECURSE
  "CMakeFiles/fig7_comte_explanations.dir/fig7_comte_explanations.cpp.o"
  "CMakeFiles/fig7_comte_explanations.dir/fig7_comte_explanations.cpp.o.d"
  "fig7_comte_explanations"
  "fig7_comte_explanations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_comte_explanations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
