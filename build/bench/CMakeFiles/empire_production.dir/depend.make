# Empty dependencies file for empire_production.
# This may be replaced when dependencies are built.
