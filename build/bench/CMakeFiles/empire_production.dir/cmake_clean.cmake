file(REMOVE_RECURSE
  "CMakeFiles/empire_production.dir/empire_production.cpp.o"
  "CMakeFiles/empire_production.dir/empire_production.cpp.o.d"
  "empire_production"
  "empire_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/empire_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
