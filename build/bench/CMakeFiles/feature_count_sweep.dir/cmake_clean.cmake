file(REMOVE_RECURSE
  "CMakeFiles/feature_count_sweep.dir/feature_count_sweep.cpp.o"
  "CMakeFiles/feature_count_sweep.dir/feature_count_sweep.cpp.o.d"
  "feature_count_sweep"
  "feature_count_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_count_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
