# Empty dependencies file for feature_count_sweep.
# This may be replaced when dependencies are built.
