file(REMOVE_RECURSE
  "CMakeFiles/table3_grid_search.dir/table3_grid_search.cpp.o"
  "CMakeFiles/table3_grid_search.dir/table3_grid_search.cpp.o.d"
  "table3_grid_search"
  "table3_grid_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_grid_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
