# Empty compiler generated dependencies file for table3_grid_search.
# This may be replaced when dependencies are built.
