file(REMOVE_RECURSE
  "CMakeFiles/fig6_limited_data.dir/fig6_limited_data.cpp.o"
  "CMakeFiles/fig6_limited_data.dir/fig6_limited_data.cpp.o.d"
  "fig6_limited_data"
  "fig6_limited_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_limited_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
