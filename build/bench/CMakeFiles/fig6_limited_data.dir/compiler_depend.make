# Empty compiler generated dependencies file for fig6_limited_data.
# This may be replaced when dependencies are built.
