# Empty dependencies file for prodigy_detector_test.
# This may be replaced when dependencies are built.
