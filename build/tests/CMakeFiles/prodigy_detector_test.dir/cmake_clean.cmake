file(REMOVE_RECURSE
  "CMakeFiles/prodigy_detector_test.dir/prodigy_detector_test.cpp.o"
  "CMakeFiles/prodigy_detector_test.dir/prodigy_detector_test.cpp.o.d"
  "prodigy_detector_test"
  "prodigy_detector_test.pdb"
  "prodigy_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodigy_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
