
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/regression_test.cpp" "tests/CMakeFiles/regression_test.dir/regression_test.cpp.o" "gcc" "tests/CMakeFiles/regression_test.dir/regression_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prodigy_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_comte.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_hpas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prodigy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
