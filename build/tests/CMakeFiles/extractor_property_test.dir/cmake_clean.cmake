file(REMOVE_RECURSE
  "CMakeFiles/extractor_property_test.dir/extractor_property_test.cpp.o"
  "CMakeFiles/extractor_property_test.dir/extractor_property_test.cpp.o.d"
  "extractor_property_test"
  "extractor_property_test.pdb"
  "extractor_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extractor_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
