# Empty compiler generated dependencies file for extractor_property_test.
# This may be replaced when dependencies are built.
