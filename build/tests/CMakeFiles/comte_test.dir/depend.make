# Empty dependencies file for comte_test.
# This may be replaced when dependencies are built.
