file(REMOVE_RECURSE
  "CMakeFiles/comte_test.dir/comte_test.cpp.o"
  "CMakeFiles/comte_test.dir/comte_test.cpp.o.d"
  "comte_test"
  "comte_test.pdb"
  "comte_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
