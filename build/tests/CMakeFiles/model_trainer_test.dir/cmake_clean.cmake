file(REMOVE_RECURSE
  "CMakeFiles/model_trainer_test.dir/model_trainer_test.cpp.o"
  "CMakeFiles/model_trainer_test.dir/model_trainer_test.cpp.o.d"
  "model_trainer_test"
  "model_trainer_test.pdb"
  "model_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
