# Empty dependencies file for model_trainer_test.
# This may be replaced when dependencies are built.
