# Empty compiler generated dependencies file for hpas_test.
# This may be replaced when dependencies are built.
