file(REMOVE_RECURSE
  "CMakeFiles/hpas_test.dir/hpas_test.cpp.o"
  "CMakeFiles/hpas_test.dir/hpas_test.cpp.o.d"
  "hpas_test"
  "hpas_test.pdb"
  "hpas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
