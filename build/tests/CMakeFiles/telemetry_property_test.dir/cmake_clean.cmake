file(REMOVE_RECURSE
  "CMakeFiles/telemetry_property_test.dir/telemetry_property_test.cpp.o"
  "CMakeFiles/telemetry_property_test.dir/telemetry_property_test.cpp.o.d"
  "telemetry_property_test"
  "telemetry_property_test.pdb"
  "telemetry_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
