# Empty dependencies file for usad_test.
# This may be replaced when dependencies are built.
