file(REMOVE_RECURSE
  "CMakeFiles/usad_test.dir/usad_test.cpp.o"
  "CMakeFiles/usad_test.dir/usad_test.cpp.o.d"
  "usad_test"
  "usad_test.pdb"
  "usad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
