file(REMOVE_RECURSE
  "CMakeFiles/chi_square_test.dir/chi_square_test.cpp.o"
  "CMakeFiles/chi_square_test.dir/chi_square_test.cpp.o.d"
  "chi_square_test"
  "chi_square_test.pdb"
  "chi_square_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chi_square_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
