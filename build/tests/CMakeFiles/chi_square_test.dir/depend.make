# Empty dependencies file for chi_square_test.
# This may be replaced when dependencies are built.
