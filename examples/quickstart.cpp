// Quickstart: train Prodigy on healthy telemetry and detect an injected
// memory leak — the paper's core loop in one file.
//
//   build/examples/quickstart
//
// Steps:
//   1. simulate healthy runs of an HPC application (LDMS-style telemetry),
//   2. preprocess + extract statistical features (the TSFRESH stage),
//   3. train the VAE on healthy samples only and derive the 99th-percentile
//      reconstruction-error threshold,
//   4. score a new job that has a memleak on one of its nodes.
#include "core/prodigy_detector.hpp"
#include "pipeline/data_pipeline.hpp"
#include "util/logging.hpp"

#include <cstdio>

int main() {
  using namespace prodigy;
  util::set_log_level(util::LogLevel::Warn);

  // --- 1. Healthy telemetry: 8 LAMMPS runs on 4 nodes each. ---------------
  std::vector<telemetry::JobTelemetry> healthy_jobs;
  for (int run = 0; run < 8; ++run) {
    telemetry::RunConfig config;
    config.app = telemetry::application_by_name("LAMMPS");
    config.job_id = 100 + run;
    config.num_nodes = 4;
    config.duration_s = 180.0;
    config.seed = 1000 + static_cast<std::uint64_t>(run);
    healthy_jobs.push_back(telemetry::generate_run(config));
  }

  // --- 2. Preprocess + feature extraction. --------------------------------
  pipeline::PreprocessOptions preprocess;
  preprocess.trim_seconds = 30.0;  // drop init/termination phases
  auto train = pipeline::DataPipeline::build_from_jobs(healthy_jobs, preprocess);
  std::printf("training samples: %zu, features: %zu\n", train.size(),
              train.X.cols());

  // Keep the 128 highest-variance features (no labels needed).
  const auto selection = features::select_features_variance(train, 128);
  train = train.select_columns(selection.selected);

  pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
  const auto train_scaled = scaler.fit_transform(train.X);

  // --- 3. Train the VAE on healthy samples only. --------------------------
  core::ProdigyConfig config;
  config.train.epochs = 150;
  config.train.batch_size = 16;
  config.train.learning_rate = 1e-3;
  core::ProdigyDetector detector(config);
  detector.fit_healthy(train_scaled);
  std::printf("trained; anomaly threshold (99th pct of healthy MAE): %.4f\n",
              detector.threshold());

  // --- 4. A new job arrives: memleak on node 2. ----------------------------
  telemetry::RunConfig suspect;
  suspect.app = telemetry::application_by_name("LAMMPS");
  suspect.job_id = 999;
  suspect.num_nodes = 4;
  suspect.duration_s = 180.0;
  suspect.seed = 4242;
  suspect.anomaly = {hpas::AnomalyKind::Memleak, 1.0, "-s 10M -p 1"};
  suspect.anomalous_nodes = {2};

  auto test = pipeline::DataPipeline::build_from_jobs(
      {telemetry::generate_run(suspect)}, preprocess);
  test = test.select_columns(selection.selected);
  const auto scores = detector.score(scaler.transform(test.X));
  const auto verdicts = detector.predict(scaler.transform(test.X));

  std::printf("\njob 999 (memleak injected on node 2):\n");
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    std::printf("  node %lld: score %.4f -> %s\n",
                static_cast<long long>(test.meta[i].component_id), scores[i],
                verdicts[i] ? "ANOMALOUS" : "healthy");
  }
  return 0;
}
