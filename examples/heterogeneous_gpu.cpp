// Heterogeneous nodes (paper §7 future work): GPU telemetry "differs in
// terms of metrics and granularity" from CPU telemetry — this example runs
// the Prodigy pipeline over concatenated CPU (meminfo/vmstat/procstat) and
// GPU (DCGM-style) catalogs, training one joint model for the accelerated
// partition, and detects two GPU-specific failure modes that never appear
// in CPU metrics alone: a device memory leak and thermal throttling.
#include "core/prodigy_detector.hpp"
#include "pipeline/data_pipeline.hpp"
#include "telemetry/gpu.hpp"
#include "util/logging.hpp"

#include <cstdio>

int main() {
  using namespace prodigy;
  using namespace prodigy::telemetry;
  util::set_log_level(util::LogLevel::Warn);

  const auto names = gpu::heterogeneous_metric_names();
  const auto kinds = gpu::heterogeneous_metric_kinds();
  std::printf("heterogeneous node: %zu CPU + %zu GPU metrics -> %zu columns\n",
              metric_count(), gpu::gpu_metric_count(), names.size());

  // Healthy GPU-partition runs across the accelerated applications.
  std::vector<JobTelemetry> healthy_jobs;
  util::Rng rng(77);
  std::int64_t job_id = 100;
  for (const auto& app : gpu::gpu_applications()) {
    for (int run = 0; run < 4; ++run) {
      gpu::GpuRunConfig config;
      config.app = app;
      config.job_id = job_id;
      config.num_nodes = 4;
      config.duration_s = 150.0;
      config.seed = rng();
      config.first_component_id = job_id * 10;
      healthy_jobs.push_back(gpu::generate_gpu_run(config));
      ++job_id;
    }
  }

  // Offline feature selection a la Fig. 1: a few instrumented runs with
  // synthetic GPU anomalies give chi-square its anomalous class.
  std::vector<JobTelemetry> selection_jobs = healthy_jobs;
  for (const auto kind : {gpu::GpuAnomalyKind::GpuMemleak,
                          gpu::GpuAnomalyKind::ThermalThrottle}) {
    gpu::GpuRunConfig config;
    config.app = gpu::gpu_application_by_name("sw4-GPU");
    config.job_id = job_id++;
    config.num_nodes = 4;
    config.duration_s = 150.0;
    config.seed = rng();
    config.anomaly = kind;
    config.first_component_id = config.job_id * 10;
    selection_jobs.push_back(gpu::generate_gpu_run(config));
  }

  pipeline::PreprocessOptions preprocess;
  preprocess.trim_seconds = 25.0;
  auto selection_data = pipeline::DataPipeline::build_from_jobs(
      selection_jobs, names, kinds, preprocess);
  pipeline::Scaler selection_scaler;
  selection_data.X = selection_scaler.fit_transform(selection_data.X);
  const auto selection = features::select_features_chi2(selection_data, 256);

  auto train = pipeline::DataPipeline::build_from_jobs(healthy_jobs, names, kinds,
                                                       preprocess);
  std::printf("training: %zu samples x %zu features (top %zu selected)\n",
              train.size(), train.X.cols(), selection.selected.size());
  train = train.select_columns(selection.selected);
  pipeline::Scaler scaler;
  const auto train_scaled = scaler.fit_transform(train.X);

  core::ProdigyConfig model;
  model.train.epochs = 180;
  model.train.batch_size = 16;
  model.train.learning_rate = 1e-3;
  core::ProdigyDetector detector(model);
  detector.fit_healthy(train_scaled);
  std::printf("joint CPU+GPU model trained; threshold %.4f\n\n",
              detector.threshold());

  // Two GPU incidents on the accelerated partition.
  for (const auto& [kind, label] :
       {std::pair{gpu::GpuAnomalyKind::GpuMemleak, "device memory leak"},
        {gpu::GpuAnomalyKind::ThermalThrottle, "thermal throttling"}}) {
    gpu::GpuRunConfig incident;
    incident.app = gpu::gpu_application_by_name("HACC-GPU");
    incident.job_id = job_id;
    incident.num_nodes = 4;
    incident.duration_s = 150.0;
    incident.seed = rng();
    incident.anomaly = kind;
    incident.anomalous_nodes = {1};
    incident.first_component_id = job_id * 10;
    auto test = pipeline::DataPipeline::build_from_jobs(
        {gpu::generate_gpu_run(incident)}, names, kinds, preprocess);
    test = test.select_columns(selection.selected);
    const auto scores = detector.score(scaler.transform(test.X));

    std::printf("== job %lld: %s on node 1 ==\n", static_cast<long long>(job_id),
                label);
    for (std::size_t i = 0; i < scores.size(); ++i) {
      std::printf("  component %lld: score %8.4f -> %s\n",
                  static_cast<long long>(test.meta[i].component_id), scores[i],
                  scores[i] > detector.threshold() ? "ANOMALOUS" : "healthy");
    }
    ++job_id;
  }
  return 0;
}
