// Deployment pipeline walkthrough — the production flow of Figures 2-4:
//
//   ldmsd samplers -> DSOS store -> [offline] DataGenerator -> DataPipeline
//   -> ModelTrainer -> saved bundle -> [online] AnalyticsService request
//   "job ID -> per-node anomaly dashboard", including model persistence to
//   disk exactly as the monitoring server (Shirley) would do it.
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "util/logging.hpp"

#include <cstdio>
#include <filesystem>

int main() {
  using namespace prodigy;
  util::set_log_level(util::LogLevel::Info);

  // --- Monitoring: several applications stream telemetry into DSOS. -------
  deploy::DsosStore store;
  std::vector<std::int64_t> train_jobs;
  std::int64_t job_id = 7000;
  util::Rng seed_rng(99);
  for (const char* app : {"LAMMPS", "HACC", "sw4"}) {
    for (int run = 0; run < 4; ++run) {
      telemetry::RunConfig config;
      config.app = telemetry::application_by_name(app);
      config.job_id = job_id;
      config.num_nodes = 4;
      config.duration_s = 200.0;
      config.seed = seed_rng();
      config.first_component_id = job_id * 10;
      store.ingest(telemetry::generate_run(config));
      train_jobs.push_back(job_id++);
    }
  }
  // A couple of runs with synthetic anomalies give the offline chi-square
  // selection its (tiny) anomalous class — the paper used 24 such samples.
  for (const auto& anomaly : {hpas::table2_configurations()[0],
                              hpas::table2_configurations()[9]}) {
    telemetry::RunConfig config;
    config.app = telemetry::application_by_name("LAMMPS");
    config.job_id = job_id;
    config.num_nodes = 4;
    config.duration_s = 200.0;
    config.seed = seed_rng();
    config.anomaly = anomaly;
    config.first_component_id = job_id * 10;
    store.ingest(telemetry::generate_run(config));
    train_jobs.push_back(job_id++);
  }
  std::printf("DSOS store: %zu jobs, %zu datapoints\n", store.job_count(),
              store.datapoint_count());

  // --- Offline training (Fig. 3). ------------------------------------------
  deploy::TrainFromStoreOptions options;
  options.preprocess.trim_seconds = 30.0;
  options.top_k_features = 512;
  options.model.train.epochs = 150;
  options.model.train.batch_size = 16;
  options.model.train.learning_rate = 1e-3;
  options.system_name = "Eclipse";
  auto service = deploy::AnalyticsService::train_from_store(store, train_jobs,
                                                            options);

  // Persist the bundle like ModelTrainer saving to the monitoring server.
  const auto bundle_dir =
      (std::filesystem::temp_directory_path() / "prodigy_example_bundle").string();
  service.bundle().save(bundle_dir);
  std::printf("model bundle saved to %s (threshold %.4f, %zu features)\n",
              bundle_dir.c_str(), service.bundle().detector.threshold(),
              service.bundle().metadata.feature_names.size());
  const auto reloaded = core::ModelBundle::load(bundle_dir);
  std::printf("reloaded bundle for system %s trained on %zu healthy samples\n",
              reloaded.metadata.system.c_str(),
              reloaded.metadata.training_samples);

  // --- Online: a user submits a job ID to the dashboard (Fig. 4). ----------
  telemetry::RunConfig incident;
  incident.app = telemetry::application_by_name("HACC");
  incident.job_id = 8042;
  incident.num_nodes = 8;
  incident.duration_s = 200.0;
  incident.seed = 31337;
  incident.anomaly = {hpas::AnomalyKind::Cpuoccupy, 1.0, "-u 100%"};
  incident.anomalous_nodes = {3, 6};
  incident.first_component_id = 80420;
  store.ingest(telemetry::generate_run(incident));

  const auto analysis = service.analyze_job(8042);
  std::printf("\n== anomaly dashboard: job %lld (%s), %.2fs ==\n",
              static_cast<long long>(analysis.job_id), analysis.app.c_str(),
              analysis.seconds);
  for (const auto& node : analysis.nodes) {
    std::printf("  component %lld: %-9s score %.4f\n",
                static_cast<long long>(node.component_id),
                node.anomalous ? "ANOMALOUS" : "healthy", node.score);
    if (node.explanation && node.explanation->success) {
      std::printf("      explanation:");
      for (const auto& change : node.explanation->changes) {
        std::printf(" %s(%s)", change.metric.c_str(),
                    change.mean_delta < 0 ? "lower" : "higher");
      }
      std::printf("\n");
    }
  }

  std::filesystem::remove_all(bundle_dir);
  return 0;
}
