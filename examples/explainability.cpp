// Explainability up close: compare CoMTE's BruteForceSearch and
// OptimizedSearch on anomalies with known root causes, and show how the
// returned metric set localizes the subsystem (paper §4.4, Fig. 7).
#include "comte/comte.hpp"
#include "core/prodigy_detector.hpp"
#include "pipeline/data_pipeline.hpp"
#include "util/logging.hpp"

#include <cstdio>

using namespace prodigy;

namespace {

features::FeatureDataset collect(const std::string& app,
                                 const hpas::AnomalySpec& anomaly, int runs,
                                 std::uint64_t seed) {
  std::vector<telemetry::JobTelemetry> jobs;
  for (int run = 0; run < runs; ++run) {
    telemetry::RunConfig config;
    config.app = telemetry::application_by_name(app);
    config.job_id = static_cast<std::int64_t>(seed % 1000) * 100 + run;
    config.num_nodes = 4;
    config.duration_s = 200.0;
    config.seed = seed + static_cast<std::uint64_t>(run);
    config.anomaly = anomaly;
    config.first_component_id = config.job_id * 10;
    jobs.push_back(telemetry::generate_run(config));
  }
  pipeline::PreprocessOptions preprocess;
  preprocess.trim_seconds = 30.0;
  return pipeline::DataPipeline::build_from_jobs(jobs, preprocess);
}

void report(const char* label, const comte::Explanation& explanation) {
  std::printf("  %s: %s, %zu metric(s), %zu model calls, P %.3f -> %.3f\n", label,
              explanation.success ? "counterfactual found" : "NO counterfactual",
              explanation.changes.size(), explanation.evaluations,
              explanation.original_probability, explanation.final_probability);
  for (const auto& change : explanation.changes) {
    std::printf("      %-28s (%s)\n", change.metric.c_str(),
                change.mean_delta < 0 ? "sample too high vs healthy"
                                      : "sample too low vs healthy");
  }
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::Warn);

  // Healthy training data + anomalous probes for two distinct root causes.
  auto healthy = collect("sw4", hpas::healthy_spec(), 8, 100);
  const hpas::AnomalySpec memleak{hpas::AnomalyKind::Memleak, 1.0, "-s 10M -p 1"};
  const hpas::AnomalySpec cpu{hpas::AnomalyKind::Cpuoccupy, 1.0, "-u 100%"};
  auto memleak_probe = collect("sw4", memleak, 1, 200);
  auto cpu_probe = collect("sw4", cpu, 1, 300);

  // Feature selection + scaling fitted on the healthy data.
  const auto selection = features::select_features_variance(healthy, 160);
  healthy = healthy.select_columns(selection.selected);
  memleak_probe = memleak_probe.select_columns(selection.selected);
  cpu_probe = cpu_probe.select_columns(selection.selected);

  pipeline::Scaler scaler(pipeline::ScalerKind::MinMax);
  const auto train_scaled = scaler.fit_transform(healthy.X);

  core::ProdigyConfig config;
  config.train.epochs = 180;
  config.train.batch_size = 16;
  config.train.learning_rate = 1e-3;
  core::ProdigyDetector detector(config);
  detector.fit_healthy(train_scaled);

  // CoMTE setup: probability adapter + explainer over the training data.
  const comte::ThresholdModelAdapter adapter(
      detector, detector.threshold(),
      comte::ThresholdModelAdapter::estimate_scale(detector.score(train_scaled)));
  comte::ComteConfig comte_config;
  comte_config.max_metrics = 3;
  const comte::ComteExplainer explainer(adapter, train_scaled,
                                        healthy.labels, healthy.feature_names,
                                        comte_config);
  std::printf("explainer over %zu metric groups\n\n",
              explainer.metric_names().size());

  for (const auto& [name, probe] :
       {std::pair{"memleak", &memleak_probe}, {"cpuoccupy", &cpu_probe}}) {
    const auto probe_scaled = scaler.transform(probe->X);
    const auto scores = detector.score(probe_scaled);
    // Explain the highest-scoring node of the anomalous job.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
      if (scores[i] > scores[worst]) worst = i;
    }
    std::printf("=== %s anomaly (node %lld, score %.4f, threshold %.4f) ===\n",
                name, static_cast<long long>(probe->meta[worst].component_id),
                scores[worst], detector.threshold());
    report("OptimizedSearch ", explainer.explain_optimized(probe_scaled.row(worst)));
    report("BruteForceSearch", explainer.explain_brute_force(probe_scaled.row(worst)));
    std::printf("\n");
  }
  return 0;
}
