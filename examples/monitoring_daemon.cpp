// Streaming monitoring loop: simulates the ldmsd aggregation path — node
// telemetry lands in the DSOS store one node at a time as jobs complete, a
// pre-trained service watches the queue, and each finished job is scored
// immediately (the ODA "real-time insight" loop of §2.2/§4.1).
#include "deploy/dsos.hpp"
#include "deploy/service.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

#include <cstdio>

int main() {
  using namespace prodigy;
  util::set_log_level(util::LogLevel::Warn);

  deploy::DsosStore store;
  util::Rng rng(2024);

  // Bootstrap: train once on an initial healthy window (plus two anomalous
  // runs for feature selection), as the offline stage would.
  std::vector<std::int64_t> bootstrap_jobs;
  std::int64_t job_id = 1;
  // Train on the same application mix the stream will carry.
  const char* bootstrap_apps[] = {"miniMD", "cg", "ft"};
  for (int run = 0; run < 9; ++run) {
    telemetry::RunConfig config;
    config.app = telemetry::application_by_name(bootstrap_apps[run % 3]);
    config.job_id = job_id;
    config.num_nodes = 4;
    config.duration_s = 150.0;
    config.seed = rng();
    config.first_component_id = job_id * 10;
    store.ingest(telemetry::generate_run(config));
    bootstrap_jobs.push_back(job_id++);
  }
  for (int run = 0; run < 2; ++run) {
    telemetry::RunConfig config;
    config.app = telemetry::application_by_name("cg");
    config.job_id = job_id;
    config.num_nodes = 4;
    config.duration_s = 150.0;
    config.seed = rng();
    config.anomaly = hpas::table2_configurations()[run * 5];
    config.first_component_id = job_id * 10;
    store.ingest(telemetry::generate_run(config));
    bootstrap_jobs.push_back(job_id++);
  }

  deploy::TrainFromStoreOptions options;
  options.preprocess.trim_seconds = 25.0;
  options.top_k_features = 160;
  options.model.train.epochs = 120;
  options.model.train.batch_size = 16;
  options.model.train.learning_rate = 1e-3;
  options.system_name = "Volta";
  const auto service = deploy::AnalyticsService::train_from_store(
      store, bootstrap_jobs, options, /*explain=*/false);
  std::printf("bootstrap complete: monitoring %zu jobs of telemetry\n\n",
              store.job_count());

  // Streaming phase: jobs complete one by one; every ~4th has an anomaly.
  const auto& anomalies = hpas::table2_configurations();
  std::size_t alerts = 0, truth_anomalous = 0, correct = 0;
  util::Timer wall;
  for (int completed = 0; completed < 12; ++completed) {
    telemetry::RunConfig config;
    config.app = telemetry::application_by_name(completed % 2 ? "ft" : "miniMD");
    config.job_id = job_id;
    config.num_nodes = 4;
    config.duration_s = 150.0;
    config.seed = rng();
    config.first_component_id = job_id * 10;
    const bool anomalous = completed % 4 == 3;
    if (anomalous) {
      config.anomaly = anomalies[static_cast<std::size_t>(completed) % anomalies.size()];
      config.anomalous_nodes = {1};  // one bad node in the allocation
      config.duration_s *= hpas::expected_slowdown(config.anomaly);
    }

    // ldmsd streams per-node series into the aggregation store.
    const auto job = telemetry::generate_run(config);
    for (const auto& node : job.nodes) store.ingest_node(node);

    const auto analysis = service.analyze_job(job_id);
    std::size_t flagged = 0;
    for (const auto& node : analysis.nodes) flagged += node.anomalous ? 1 : 0;
    const bool alert = flagged > 0;
    alerts += alert;
    truth_anomalous += anomalous;
    if (alert == anomalous) ++correct;
    std::printf("job %lld (%-7s %s): %zu/%zu nodes flagged in %.2fs %s\n",
                static_cast<long long>(job_id), analysis.app.c_str(),
                anomalous ? config.anomaly.config.c_str() : "healthy", flagged,
                analysis.nodes.size(), analysis.seconds,
                alert == anomalous ? "" : " <-- wrong");
    ++job_id;
  }

  std::printf("\nstream summary: %zu alerts on %zu anomalous jobs, %zu/12 jobs "
              "correct, %.1fs total\n",
              alerts, truth_anomalous, correct, wall.elapsed_seconds());
  return 0;
}
